//! Per-neighbor reliable transport over lossy UDP.
//!
//! MPDA's correctness argument (Theorem 3) assumes the control channel
//! delivers LSUs to each neighbor **reliably and in order** — the
//! simulator models that with a link-layer ARQ abstraction; a real
//! deployment has to earn it. [`PeerChannel`] provides exactly that
//! contract on top of a datagram socket:
//!
//! * **Hello/keepalive** — a `Hello` every [`ReliableConfig::hello_interval`];
//!   silence for [`ReliableConfig::dead_interval`] declares the peer
//!   dead ([`ChannelEvent::PeerDown`]), which the node maps onto the
//!   same `Delete`-LSU withdrawal path as a simulated link cut.
//! * **Sliding-window data transfer** — LSUs get consecutive sequence
//!   numbers; at most [`ReliableConfig::window`] are in flight; the
//!   receiver buffers out-of-order arrivals and releases a strictly
//!   in-order, gap-free, duplicate-free stream to the router.
//! * **Ack-driven retransmission with an adaptive RTO** — cumulative
//!   acks; the oldest unacked segment retransmits on a timeout derived
//!   from a Jacobson/Karels estimator ([`RttEstimator`]: SRTT/RTTVAR
//!   with α=1/8, β=1/4, `RTO = SRTT + 4·RTTVAR` clamped to
//!   [[`ReliableConfig::rto_min`], [`ReliableConfig::rto_max`]]),
//!   doubled per retry of the same segment. Karn's rule: retransmitted
//!   segments contribute no samples; hello RTT echoes keep the
//!   estimator fed even on an idle adjacency. Exhausting
//!   [`ReliableConfig::retry_budget`] attempts declares the peer dead.
//!   Duplicate acks (cumulative sequence not advancing) are tolerated
//!   silently — UDP duplicates a reordered ack at will. Setting
//!   [`ReliableConfig::adaptive`] to `false` restores the fixed
//!   `rto_initial · 2^k` ladder (kept for A/B comparison in the soak
//!   harness).
//! * **Graceful degradation instead of wedging** — a retry-budget
//!   exhaustion or a reorder-buffer overflow reports what it discarded
//!   ([`ChannelEvent::Discarded`]), tears the adjacency down (the node
//!   withdraws routes through the suspect neighbor rather than
//!   blackholing into it), and enters a **probing** state: hellos
//!   continue at an exponentially relaxing cadence (up to the dead
//!   interval) so the adjacency re-establishes as soon as the path
//!   heals, without hammering a grey link.
//! * **Bounded reorder buffer** — out-of-order segments are buffered
//!   up to [`ReliableConfig::max_reorder`]; past that the stream is
//!   declared unsynchronizable ([`DownReason::ReorderOverflow`]) and
//!   the channel forces a full re-sync instead of growing without
//!   bound under sustained one-direction loss.
//! * **Incarnation-tagged re-sync** — every datagram carries the
//!   sender's incarnation (the chaos harness's scheme: restarts
//!   increment it, it is never 0). A higher incarnation than the
//!   current adjacency means the peer restarted and lost all protocol
//!   state: the channel resets and reports
//!   [`ChannelEvent::PeerRestart`] so the node can tear the adjacency
//!   down and re-synchronize from scratch. Lower incarnations are stale
//!   datagrams from a previous life and are dropped.
//! * **Addressed datagrams** — every datagram also carries the
//!   incarnation of the *receiver* the sender believes it is talking
//!   to (`for_inc`; 0 while unknown). A channel accepts only datagrams
//!   addressed to its node's current life: after a restart, a
//!   neighbor's retransmissions to the previous incarnation would
//!   otherwise establish the fresh channel and pollute its reorder
//!   buffer with old-session sequence numbers. The same defense
//!   applies one level down via `for_session` (the receiver's stream
//!   epoch being addressed): after a same-incarnation reset, a
//!   neighbor's cumulative ack — computed against the pre-reset
//!   stream — would otherwise acknowledge fresh segments it never
//!   delivered, stranding them if the wire lost them (a permanent
//!   silent blackhole the `mdr-verify` transport checker traps as a
//!   claims-vs-delivered violation).
//! * **Session-tagged streams** — each datagram carries the sender's
//!   per-adjacency stream epoch (`session`, bumped on every channel
//!   reset). Without it, a one-sided reset (this side declared dead
//!   during an asymmetric loss burst, then re-upped at the same
//!   incarnation) restarts the sequence space invisibly: fresh
//!   segments numbered below the receiver's cumulative position are
//!   acked as duplicates but never delivered — a silent blackhole —
//!   while high-numbered in-flight segments park in the peer's reorder
//!   buffer forever. A session newer than the one the adjacency was
//!   established with forces a full re-sync
//!   ([`ChannelEvent::PeerDown`] with [`DownReason::SessionReset`],
//!   then [`ChannelEvent::PeerUp`]); an older one is a stale straggler
//!   and is dropped.
//!
//! Everything here is deterministic-core code: time arrives as explicit
//! `now` seconds, outputs are [`NodeBody`] values for the node to
//! envelope and frame. No sockets, no clocks, no randomness — the
//! backoff schedule and failure decisions are pure functions of the
//! event history, which is what makes them unit-testable with a mock
//! clock and seed-stable under the soak harness. The transition
//! relation itself is decomposed into `step_*` functions (admission,
//! body dispatch, and one per timer) the same way PR 4 decomposed
//! `MpdaRouter`: [`PeerChannel::on_message`] and [`PeerChannel::poll`]
//! are thin compositions, and the `mdr-verify` transport model checker
//! drives the very same steps — there is exactly one state machine.

use mdr_proto::{LsuMessage, NodeBody};
use std::collections::{BTreeMap, VecDeque};

/// Timer and budget knobs for one adjacency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliableConfig {
    /// Seconds between keepalive `Hello`s.
    pub hello_interval: f64,
    /// Seconds of silence after which a peer is declared dead.
    pub dead_interval: f64,
    /// Base retransmission timeout (seconds) before any RTT sample has
    /// been taken; with `adaptive` off, attempt `k` waits
    /// `rto_initial · 2^k`, capped at [`ReliableConfig::rto_max`].
    pub rto_initial: f64,
    /// Floor on the adaptive retransmission timeout (seconds) — keeps a
    /// jitter-free mock clock (SRTT → 0) from retransmitting insanely
    /// fast.
    pub rto_min: f64,
    /// Ceiling on the per-attempt retransmission timeout (seconds).
    pub rto_max: f64,
    /// Retransmissions of one segment before the peer is declared dead.
    pub retry_budget: u32,
    /// Maximum unacked segments in flight.
    pub window: usize,
    /// Use the Jacobson/Karels estimator for the base timeout (`true`,
    /// the default) instead of the fixed `rto_initial` ladder.
    pub adaptive: bool,
    /// Out-of-order segments buffered before the stream is declared
    /// unsynchronizable and force-resynced
    /// ([`DownReason::ReorderOverflow`]).
    pub max_reorder: usize,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            hello_interval: 0.2,
            dead_interval: 1.0,
            rto_initial: 0.1,
            rto_min: 0.05,
            rto_max: 1.6,
            retry_budget: 6,
            window: 16,
            adaptive: true,
            max_reorder: 64,
        }
    }
}

impl ReliableConfig {
    /// The fixed-ladder timeout before retransmission attempt number
    /// `retries + 1` of a segment already sent `retries + 1` times:
    /// `rto_initial · 2^retries`, capped at `rto_max`. Used verbatim
    /// when `adaptive` is off; the adaptive path applies the same
    /// doubling to the estimator's base instead.
    pub fn rto(&self, retries: u32) -> f64 {
        let factor = 2.0f64.powi(retries.min(30) as i32);
        (self.rto_initial * factor).min(self.rto_max)
    }
}

/// Jacobson/Karels round-trip estimator (the RFC 6298 recurrences):
/// on the first sample `SRTT = s`, `RTTVAR = s/2`; afterwards
/// `RTTVAR ← 3/4·RTTVAR + 1/4·|SRTT − s|` then
/// `SRTT ← 7/8·SRTT + 1/8·s`; always `RTO = SRTT + 4·RTTVAR`, clamped
/// to the configured `[rto_min, rto_max]` band. Pure arithmetic over
/// explicit samples — no clocks — so it stays inside the
/// deterministic-core lint discipline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RttEstimator {
    srtt: f64,
    rttvar: f64,
    rto: f64,
    initialized: bool,
}

impl RttEstimator {
    /// An estimator that answers `initial_rto` until the first sample.
    pub fn new(initial_rto: f64) -> Self {
        RttEstimator { srtt: 0.0, rttvar: 0.0, rto: initial_rto, initialized: false }
    }

    /// Fold in one RTT sample (seconds), clamping the resulting RTO to
    /// `[floor, ceil]`.
    pub fn observe(&mut self, sample: f64, floor: f64, ceil: f64) {
        let s = sample.max(0.0);
        if self.initialized {
            self.rttvar = 0.75 * self.rttvar + 0.25 * (self.srtt - s).abs();
            self.srtt = 0.875 * self.srtt + 0.125 * s;
        } else {
            self.srtt = s;
            self.rttvar = s / 2.0;
            self.initialized = true;
        }
        self.rto = (self.srtt + 4.0 * self.rttvar).clamp(floor, ceil);
    }

    /// Current base timeout (before per-retry doubling).
    pub fn rto(&self) -> f64 {
        self.rto
    }

    /// Smoothed RTT, once at least one sample has arrived.
    pub fn srtt(&self) -> Option<f64> {
        self.initialized.then_some(self.srtt)
    }
}

/// Why an adjacency went down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DownReason {
    /// Nothing heard for the dead interval.
    DeadInterval,
    /// A segment exhausted its retransmission budget.
    RetryExhausted,
    /// The peer came back with a higher incarnation (reported via
    /// [`ChannelEvent::PeerRestart`], which implies a down/up pair).
    Restarted,
    /// The peer's transport reset without a restart (its stream session
    /// advanced at an unchanged incarnation): its sequence space is
    /// gone, so the adjacency re-synchronizes from scratch.
    SessionReset,
    /// The reorder buffer exceeded [`ReliableConfig::max_reorder`]: the
    /// gap at the head of the stream is not healing, so the channel
    /// forces a full re-sync instead of buffering without bound.
    ReorderOverflow,
}

impl DownReason {
    /// Stable snake-case label for telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            DownReason::DeadInterval => "dead_interval",
            DownReason::RetryExhausted => "retry_exhausted",
            DownReason::Restarted => "restarted",
            DownReason::SessionReset => "session_reset",
            DownReason::ReorderOverflow => "reorder_overflow",
        }
    }
}

/// What the channel tells the node.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelEvent {
    /// First contact: the adjacency is up at this peer incarnation.
    PeerUp {
        /// The peer's incarnation.
        incarnation: u32,
    },
    /// The peer restarted (higher incarnation seen). The channel has
    /// already reset; the node must tear down and re-establish the
    /// adjacency.
    PeerRestart {
        /// Incarnation of the previous life.
        old: u32,
        /// Incarnation of the new life.
        new: u32,
    },
    /// The adjacency failed.
    PeerDown {
        /// Why.
        reason: DownReason,
    },
    /// One in-order LSU for the router.
    Deliver(LsuMessage),
    /// A reset threw away transport state holding undelivered data.
    /// Emitted right after the `PeerDown`/`PeerRestart` that caused the
    /// reset, and only when something was actually lost — the
    /// flush-or-report accounting the soak trace audits instead of the
    /// old silent discard.
    Discarded {
        /// Segments that were in flight (sent, never acked).
        in_flight: u64,
        /// Segments queued behind the window, never transmitted.
        backlog: u64,
        /// Out-of-order segments buffered but never released in order.
        reorder: u64,
    },
}

#[derive(Debug, Clone, PartialEq)]
struct InFlight {
    seq: u64,
    msg: LsuMessage,
    last_sent: f64,
    retries: u32,
    /// Karn's rule: a retransmitted segment yields no RTT sample.
    retransmitted: bool,
}

/// Deliberately unsound transition variants, for checker
/// self-validation only. The `mdr-verify` transport model checker must
/// produce a minimal counterexample against each of these — a checker
/// that blesses a broken protocol is worse than no checker. `None` is
/// the shipping behavior; nothing outside tests and the checker ever
/// constructs the others (see [`PeerChannel::with_mutant`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChannelMutant {
    /// The sound protocol.
    #[default]
    None,
    /// `reset` keeps the old session number: a one-sided reset restarts
    /// the sequence space invisibly — the silent-blackhole bug the
    /// session tag exists to prevent.
    SkipSessionBump,
    /// Accept datagrams regardless of `for_inc`/`for_session`: a
    /// neighbor's stale stream can establish or pollute a fresh
    /// channel — the ghost-channel bug the addressing fields prevent.
    IgnoreAddressing,
    /// Ack the highest buffered sequence instead of the in-order
    /// cumulative position: claims delivery of segments still parked
    /// behind a gap, so the sender drops them from flight unheard.
    AckBeyondDelivered,
}

/// Reliable, ordered LSU transfer plus failure detection toward one
/// neighbor.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerChannel {
    cfg: ReliableConfig,
    /// Incarnation of the node hosting this channel: the only
    /// destination incarnation (besides the 0 wildcard) whose datagrams
    /// this channel accepts.
    local_inc: u32,
    /// Incarnation of the live adjacency; `None` while down.
    peer_inc: Option<u32>,
    /// The peer's stream session the adjacency was established with.
    peer_session: u32,
    /// This side's own stream epoch (≥ 1; bumped on every reset).
    session: u32,
    // --- send side ---
    next_seq: u64,
    backlog: VecDeque<LsuMessage>,
    inflight: VecDeque<InFlight>,
    acked: u64,
    // --- receive side ---
    delivered: u64,
    reorder: BTreeMap<u64, LsuMessage>,
    // --- timers / stats ---
    last_heard: f64,
    next_hello: f64,
    rtt_sample: Option<f64>,
    /// Adaptive RTO state. Deliberately *not* cleared by `reset`: the
    /// path's RTT survives an adjacency flap, so a re-established
    /// channel starts from a calibrated timeout instead of re-learning
    /// from `rto_initial`.
    rtt: RttEstimator,
    /// Most recent peer hello timestamp and the local time it arrived —
    /// echoed back (with the hold time) so the peer can compute RTT
    /// without clock synchronization, BFD-style.
    peer_hello: Option<(u64, f64)>,
    /// Instant of the most recent retransmission. Karn's rule extended
    /// to cumulative acks: a segment sent at or before this instant may
    /// have had its ack head-of-line blocked behind the retransmitted
    /// head, so its `now − last_sent` overstates the RTT — no sample.
    retx_epoch: f64,
    /// Graceful-degradation mode after a retry-budget exhaustion:
    /// instead of wedging, hellos continue at `probe_interval`, which
    /// doubles per probe up to the dead interval. Any accepted contact
    /// clears it.
    probing: bool,
    probe_interval: f64,
    /// The peer has explicitly addressed *this* incarnation of this
    /// node (`for_inc == local_inc` on a received datagram) since the
    /// channel last reset. This — not delivery counts — is what proves
    /// the peer processed our current incarnation and purged any state
    /// from our previous life: wildcard-addressed (`for_inc == 0`)
    /// traffic queued before the peer ever heard of us can establish
    /// and deliver on a fresh channel without the peer knowing we
    /// restarted. The restart quarantine's release predicate rests on
    /// this flag.
    peer_proven: bool,
    /// Checker-validation sabotage knob — [`ChannelMutant::None`] in
    /// every shipping channel. A parameter of the transition relation,
    /// not part of the state (excluded from `encode_state`).
    mutant: ChannelMutant,
}

impl PeerChannel {
    /// A fresh (down) channel for a node at incarnation `local_inc`;
    /// the first [`PeerChannel::poll`] at or after `now` emits the
    /// opening `Hello`.
    pub fn new(cfg: ReliableConfig, local_inc: u32, now: f64) -> Self {
        PeerChannel {
            cfg,
            local_inc,
            peer_inc: None,
            peer_session: 0,
            session: 1,
            next_seq: 1,
            backlog: VecDeque::new(),
            inflight: VecDeque::new(),
            acked: 0,
            delivered: 0,
            reorder: BTreeMap::new(),
            last_heard: now,
            next_hello: now,
            rtt_sample: None,
            rtt: RttEstimator::new(cfg.rto_initial),
            peer_hello: None,
            retx_epoch: f64::NEG_INFINITY,
            probing: false,
            probe_interval: cfg.hello_interval,
            peer_proven: false,
            mutant: ChannelMutant::None,
        }
    }

    /// A channel running a deliberately broken transition relation —
    /// checker self-validation only (see [`ChannelMutant`]).
    pub fn with_mutant(
        cfg: ReliableConfig,
        local_inc: u32,
        now: f64,
        mutant: ChannelMutant,
    ) -> Self {
        PeerChannel { mutant, ..PeerChannel::new(cfg, local_inc, now) }
    }

    /// The adjacency is established.
    pub fn is_up(&self) -> bool {
        self.peer_inc.is_some()
    }

    /// Incarnation of the live adjacency.
    pub fn incarnation(&self) -> Option<u32> {
        self.peer_inc
    }

    /// This side's current stream epoch — stamped on every outgoing
    /// datagram of this adjacency.
    pub fn session(&self) -> u32 {
        self.session
    }

    /// The peer's stream session this adjacency was established with
    /// (0 while down).
    pub fn peer_session(&self) -> u32 {
        self.peer_session
    }

    /// The addressing triple for every outgoing datagram of this
    /// adjacency: `(for_inc, for_session, session)` — the peer life
    /// and stream epoch we believe we are talking to (0 while
    /// unknown), plus our own stream epoch.
    pub fn address(&self) -> (u32, u32, u32) {
        (self.peer_inc.unwrap_or(0), self.peer_session, self.session)
    }

    /// Out-of-order segments currently parked in the reorder buffer.
    pub fn reorder_len(&self) -> usize {
        self.reorder.len()
    }

    /// Unacked segments in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Highest cumulative sequence the peer has acknowledged for our
    /// outgoing stream this session. The transport model checker's
    /// no-silent-blackhole invariant pins this against what the peer
    /// actually delivered.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Segments queued behind the window.
    pub fn backlog(&self) -> usize {
        self.backlog.len()
    }

    /// In-order segments delivered since the adjacency (re)established.
    ///
    /// NOT proof that the peer knows this incarnation: the channel also
    /// accepts wildcard-addressed (`for_inc == 0`) datagrams — queued
    /// by a peer that has never heard of us — so delivery can happen
    /// while the peer still holds state from our previous life. The
    /// `mdr-verify` transport checker produced the counterexample; use
    /// [`PeerChannel::peer_proven`] for the quarantine decision.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The peer has explicitly addressed this node's *current*
    /// incarnation since the channel last reset — the proof of
    /// restart-processing the quarantine release in [`crate::core`]
    /// keys on (see the field's comment for why delivery counts are
    /// not enough).
    pub fn peer_proven(&self) -> bool {
        self.peer_proven
    }

    /// True when nothing is queued, in flight, or buffered — the
    /// channel's half of the convergence predicate.
    pub fn is_idle(&self) -> bool {
        self.backlog.is_empty() && self.inflight.is_empty() && self.reorder.is_empty()
    }

    /// Every LSU ever queued on this adjacency has been transport-acked
    /// by the peer. Because the peer's pump hands each in-order segment
    /// to its router *before* its cumulative ack reaches the wire, a
    /// flushed channel proves the peer has **processed** everything we
    /// sent — the exact premise MPDA's ACTIVE phase needs before
    /// raising FD (see the ack substitution in [`crate::core`]).
    pub fn flushed(&self) -> bool {
        self.backlog.is_empty() && self.inflight.is_empty()
    }

    /// Take the RTT sample produced by the most recent ack or hello
    /// echo, if any (cleared on read; retransmitted segments never
    /// produce one — Karn's rule).
    pub fn take_rtt_sample(&mut self) -> Option<f64> {
        self.rtt_sample.take()
    }

    /// In the probing state: the adjacency failed its retry budget and
    /// hellos continue at an exponentially relaxing cadence until the
    /// peer answers.
    pub fn is_probing(&self) -> bool {
        self.probing
    }

    /// Current base retransmission timeout — the estimator's RTO when
    /// adaptive, `rto_initial` otherwise. Per-retry doubling applies on
    /// top of this.
    pub fn base_rto(&self) -> f64 {
        if self.cfg.adaptive {
            self.rtt.rto()
        } else {
            self.cfg.rto_initial
        }
    }

    /// Smoothed RTT toward this peer, once a sample has arrived.
    pub fn srtt(&self) -> Option<f64> {
        self.rtt.srtt()
    }

    /// The timeout ahead of retransmission `retries + 1` of a segment:
    /// the adaptive (or fixed) base doubled per retry, capped at
    /// `rto_max`. `poll` and `next_deadline` both go through here so
    /// their deadline arithmetic agrees bit-for-bit.
    fn seg_rto(&self, retries: u32) -> f64 {
        if self.cfg.adaptive {
            let factor = 2.0f64.powi(retries.min(30) as i32);
            (self.rtt.rto() * factor).min(self.cfg.rto_max)
        } else {
            self.cfg.rto(retries)
        }
    }

    /// Build the outgoing keepalive: our send timestamp plus an echo of
    /// the peer's latest hello (and how long we held it), which is all
    /// the peer needs to compute RTT = now − echo − hold locally.
    fn make_hello(&self, now: f64) -> NodeBody {
        let (echo_ts_us, hold_us) = match self.peer_hello {
            Some((ts, rx)) => (ts, ((now - rx).max(0.0) * 1e6).round() as u64),
            None => (0, 0),
        };
        NodeBody::Hello { ts_us: (now.max(0.0) * 1e6).round() as u64, echo_ts_us, hold_us }
    }

    /// [`ChannelEvent::Discarded`] for a reset's casualty counts, or
    /// `None` when the reset lost nothing.
    fn discard_event(counts: (u64, u64, u64)) -> Option<ChannelEvent> {
        let (in_flight, backlog, reorder) = counts;
        (in_flight + backlog + reorder > 0).then_some(ChannelEvent::Discarded {
            in_flight,
            backlog,
            reorder,
        })
    }

    /// Append a canonical byte encoding of the full transport state:
    /// every field that participates in the transition relation (the
    /// config and mutant knobs are parameters of the relation, not
    /// state). The `mdr-verify` transport checker dedupes and
    /// canonicalizes world states on exactly these bytes, so any field
    /// influencing a future transition must appear here.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        fn f(out: &mut Vec<u8>, v: f64) {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        fn lsu(out: &mut Vec<u8>, m: &LsuMessage) {
            let b = mdr_proto::encode(m);
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(&b);
        }
        out.extend_from_slice(&self.local_inc.to_le_bytes());
        out.push(self.peer_inc.is_some() as u8);
        out.extend_from_slice(&self.peer_inc.unwrap_or(0).to_le_bytes());
        out.extend_from_slice(&self.peer_session.to_le_bytes());
        out.extend_from_slice(&self.session.to_le_bytes());
        out.extend_from_slice(&self.next_seq.to_le_bytes());
        out.extend_from_slice(&(self.backlog.len() as u32).to_le_bytes());
        for m in &self.backlog {
            lsu(out, m);
        }
        out.extend_from_slice(&(self.inflight.len() as u32).to_le_bytes());
        for s in &self.inflight {
            out.extend_from_slice(&s.seq.to_le_bytes());
            lsu(out, &s.msg);
            f(out, s.last_sent);
            out.extend_from_slice(&s.retries.to_le_bytes());
            out.push(s.retransmitted as u8);
        }
        out.extend_from_slice(&self.acked.to_le_bytes());
        out.extend_from_slice(&self.delivered.to_le_bytes());
        out.extend_from_slice(&(self.reorder.len() as u32).to_le_bytes());
        for (seq, m) in &self.reorder {
            out.extend_from_slice(&seq.to_le_bytes());
            lsu(out, m);
        }
        f(out, self.last_heard);
        f(out, self.next_hello);
        f(out, self.rtt_sample.unwrap_or(f64::NEG_INFINITY));
        f(out, self.rtt.srtt);
        f(out, self.rtt.rttvar);
        f(out, self.rtt.rto);
        out.push(self.rtt.initialized as u8);
        match self.peer_hello {
            Some((ts, rx)) => {
                out.push(1);
                out.extend_from_slice(&ts.to_le_bytes());
                f(out, rx);
            }
            None => out.push(0),
        }
        f(out, self.retx_epoch);
        out.push(self.probing as u8);
        f(out, self.probe_interval);
        out.push(self.peer_proven as u8);
    }

    /// Queue one LSU for reliable in-order delivery and return any
    /// segments that fit the window right now.
    pub fn send(&mut self, msg: LsuMessage, now: f64) -> Vec<NodeBody> {
        self.backlog.push_back(msg);
        self.fill_window(now)
    }

    fn fill_window(&mut self, now: f64) -> Vec<NodeBody> {
        let mut out = Vec::new();
        while self.inflight.len() < self.cfg.window {
            let Some(msg) = self.backlog.pop_front() else { break };
            let seq = self.next_seq;
            self.next_seq += 1;
            self.inflight.push_back(InFlight {
                seq,
                msg: msg.clone(),
                last_sent: now,
                retries: 0,
                retransmitted: false,
            });
            out.push(NodeBody::Data { seq, lsu: msg });
        }
        out
    }

    /// Handle one decoded body from this peer, stamped with the
    /// sender's `incarnation`, the incarnation and stream epoch it
    /// addressed (`for_inc`/`for_session`), and its own stream
    /// `session`. Returns bodies to transmit back and events for the
    /// node. A thin composition of the `step_*` transition functions —
    /// the live node, the mock-clock tests, and the `mdr-verify`
    /// transport checker all drive exactly this relation.
    pub fn on_message(
        &mut self,
        incarnation: u32,
        for_inc: u32,
        for_session: u32,
        session: u32,
        body: NodeBody,
        now: f64,
    ) -> (Vec<NodeBody>, Vec<ChannelEvent>) {
        let (accepted, mut events) =
            self.step_admit(incarnation, for_inc, for_session, session, now);
        if !accepted {
            return (Vec::new(), events);
        }
        let mut out = Vec::new();
        match body {
            NodeBody::Hello { ts_us, echo_ts_us, hold_us } => {
                self.step_hello(ts_us, echo_ts_us, hold_us, now);
            }
            NodeBody::Data { seq, lsu } => {
                let (o, ev) = self.step_data(seq, lsu, now);
                out.extend(o);
                events.extend(ev);
            }
            NodeBody::Ack { cum_seq } => out.extend(self.step_ack(cum_seq, now)),
        }
        (out, events)
    }

    /// Admission control plus adjacency lifecycle: the addressing
    /// gates (`for_inc`/`for_session`), the incarnation comparison,
    /// and the session comparison. Returns whether the datagram's body
    /// should be processed at all, plus any lifecycle events the
    /// decision produced (up/restart/reset).
    pub fn step_admit(
        &mut self,
        incarnation: u32,
        for_inc: u32,
        for_session: u32,
        session: u32,
        now: f64,
    ) -> (bool, Vec<ChannelEvent>) {
        let mut events = Vec::new();
        if self.mutant != ChannelMutant::IgnoreAddressing {
            if for_inc != 0 && for_inc != self.local_inc {
                // Addressed to a different life of this node — traffic
                // (or retransmissions) from a session built against an
                // incarnation we no longer are. Accepting it would let
                // a neighbor's stale stream establish or pollute a
                // fresh channel.
                return (false, events);
            }
            if for_session != 0 && for_session != self.session {
                // Addressed to a different stream epoch of this node:
                // the sender is still talking to the adjacency we had
                // before our last reset. Its cumulative acks were
                // computed against that stream's sequence space —
                // accepting one would acknowledge fresh segments the
                // sender never delivered, stranding them for good if
                // the wire lost them.
                return (false, events);
            }
        }
        if for_inc != 0 && for_inc == self.local_inc {
            // The peer named this exact life: whatever else the
            // datagram carries, the peer has processed our current
            // incarnation (see the `peer_proven` field).
            self.peer_proven = true;
        }
        match self.peer_inc {
            None => {
                self.peer_inc = Some(incarnation);
                self.peer_session = session;
                self.last_heard = now;
                if self.probing {
                    // Contact: leave the probing backoff and return to
                    // the keepalive cadence promptly so the peer's own
                    // dead-interval timer stays fed.
                    self.probing = false;
                    self.probe_interval = self.cfg.hello_interval;
                    self.next_hello = self.next_hello.min(now + self.cfg.hello_interval);
                }
                events.push(ChannelEvent::PeerUp { incarnation });
            }
            Some(cur) if incarnation > cur => {
                // The peer restarted: everything it knew — our
                // adjacency, every sequence number — is gone. Reset and
                // re-establish at the new incarnation.
                let discarded = self.reset(now);
                self.peer_inc = Some(incarnation);
                self.peer_session = session;
                self.last_heard = now;
                events.push(ChannelEvent::PeerRestart { old: cur, new: incarnation });
                events.extend(Self::discard_event(discarded));
            }
            Some(cur) if incarnation < cur => {
                // A stale datagram from a previous life, still floating
                // around the network. Dropping it is the whole point of
                // incarnation tags.
                return (false, events);
            }
            Some(_) if session > self.peer_session => {
                // Same process, new stream: the peer's channel reset
                // underneath us (it declared us dead during an
                // asymmetric loss burst, say) and its sequence space
                // restarted. Re-synchronize from scratch — continuing
                // with our cumulative position would silently blackhole
                // its fresh low-numbered segments as "duplicates". The
                // reset-then-adopt below cannot ping-pong: the peer
                // meets our own session bump with its adjacency already
                // cleared, and a fresh adoption triggers nothing.
                let discarded = self.reset(now);
                self.peer_inc = Some(incarnation);
                self.peer_session = session;
                self.last_heard = now;
                events.push(ChannelEvent::PeerDown { reason: DownReason::SessionReset });
                events.extend(Self::discard_event(discarded));
                events.push(ChannelEvent::PeerUp { incarnation });
            }
            Some(_) if session < self.peer_session => {
                // Straggler from the peer's previous stream.
                return (false, events);
            }
            Some(_) => {
                self.last_heard = now;
            }
        }
        if self.mutant != ChannelMutant::IgnoreAddressing
            && for_session != 0
            && for_session != self.session
        {
            // A reset-then-adopt above bumped our own session, so the
            // datagram — admitted against the session we had on entry —
            // is now addressed to a stream that no longer exists. The
            // lifecycle news (restart/reset) was real and stands, but
            // the body must not touch the fresh stream: its cumulative
            // ack was computed against the abandoned sequence space,
            // and applying it here would pre-acknowledge segments of
            // the new stream the peer has never seen.
            return (false, events);
        }
        (true, events)
    }

    /// Body transition for a keepalive: remember the peer's timestamp
    /// for our next echo, and fold an echoed RTT sample into the
    /// estimator.
    pub fn step_hello(&mut self, ts_us: u64, echo_ts_us: u64, hold_us: u64, now: f64) {
        if ts_us != 0 {
            // Remember the peer's timestamp (and when we got it) so
            // our next hello can echo it back.
            self.peer_hello = Some((ts_us, now));
        }
        if echo_ts_us != 0 {
            // Our own timestamp coming back: RTT is our elapsed time
            // minus how long the peer sat on it — no clock
            // synchronization involved. Reject samples outside
            // [0, dead_interval] (skewed holds, ancient stragglers
            // that survived a filter above).
            let sample = now - echo_ts_us as f64 / 1e6 - hold_us as f64 / 1e6;
            if sample >= 0.0 && sample <= self.cfg.dead_interval {
                self.rtt.observe(sample, self.cfg.rto_min, self.cfg.rto_max);
                self.rtt_sample = Some(sample);
            }
        }
    }

    /// Body transition for one data segment: reorder-buffer admission,
    /// in-order release, the bounded-buffer overflow teardown, and the
    /// cumulative ack.
    pub fn step_data(
        &mut self,
        seq: u64,
        lsu: LsuMessage,
        now: f64,
    ) -> (Vec<NodeBody>, Vec<ChannelEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();
        if seq > self.delivered {
            self.reorder.insert(seq, lsu);
            // Release the contiguous prefix in order.
            while let Some(msg) = self.reorder.remove(&(self.delivered + 1)) {
                self.delivered += 1;
                events.push(ChannelEvent::Deliver(msg));
            }
            if self.reorder.len() > self.cfg.max_reorder {
                // The head-of-line gap is not healing while segments
                // keep arriving past it: force a full re-sync (session
                // bump) rather than buffer without bound. No ack goes
                // out — the peer must meet our new session, not our
                // stale cumulative position.
                let discarded = self.reset(now);
                events.push(ChannelEvent::PeerDown { reason: DownReason::ReorderOverflow });
                events.extend(Self::discard_event(discarded));
                return (out, events);
            }
        }
        // Always ack with the cumulative position: a duplicate or
        // out-of-order segment means our previous ack was lost or is
        // still in flight, so repeat it.
        let claim = if self.mutant == ChannelMutant::AckBeyondDelivered {
            self.reorder.keys().next_back().copied().unwrap_or(self.delivered).max(self.delivered)
        } else {
            self.delivered
        };
        out.push(NodeBody::Ack { cum_seq: claim });
        (out, events)
    }

    /// Body transition for one cumulative ack: pop acknowledged
    /// segments off the flight queue (feeding the RTT estimator under
    /// Karn's rule) and slide the window.
    pub fn step_ack(&mut self, cum_seq: u64, now: f64) -> Vec<NodeBody> {
        let mut out = Vec::new();
        // Duplicate/reordered acks (cum_seq <= acked) fall through
        // both loops untouched: tolerated, not fatal.
        if cum_seq > self.acked {
            self.acked = cum_seq;
            while self.inflight.front().is_some_and(|f| f.seq <= cum_seq) {
                if let Some(f) = self.inflight.pop_front() {
                    // Karn's rule, extended: no sample from a
                    // retransmitted segment (which transmission does
                    // the ack answer?), and none from a segment whose
                    // flight overlapped someone else's retransmission —
                    // its cumulative ack was head-of-line blocked
                    // behind the loss, so the elapsed time measures the
                    // stall, not the path.
                    if !f.retransmitted && f.last_sent > self.retx_epoch {
                        let sample = (now - f.last_sent).max(0.0);
                        self.rtt.observe(sample, self.cfg.rto_min, self.cfg.rto_max);
                        self.rtt_sample = Some(sample);
                    }
                }
            }
            out.extend(self.fill_window(now));
        }
        out
    }

    /// Drive timers at `now`: keepalives, retransmissions, failure
    /// detection. Call at least once per [`PeerChannel::next_deadline`].
    /// A thin composition of the timer guards and `step_*` firing
    /// functions below, which the `mdr-verify` transport checker also
    /// drives directly (firing a step without its guard is a sound
    /// over-approximation of timing).
    pub fn poll(&mut self, now: f64) -> (Vec<NodeBody>, Vec<ChannelEvent>) {
        // Failure detection first: a dead peer gets no retransmissions
        // and no hello this round.
        if self.dead_expiry_due(now) {
            return (Vec::new(), self.step_dead_expiry(now));
        }
        let mut out = Vec::new();
        if self.retx_due(now) {
            let (retx, events) = self.step_retx(now);
            if !events.is_empty() {
                // Retry exhaustion tore the adjacency down; the next
                // poll's hello opens the probing cadence.
                return (retx, events);
            }
            out.extend(retx);
        }
        if self.hello_due(now) {
            out.push(self.step_hello_timer(now));
        }
        (out, Vec::new())
    }

    /// The dead-interval timer is due: the adjacency is up but nothing
    /// has been heard for a full dead interval. Deadline comparisons
    /// use the exact `base + interval` sums that `next_deadline`
    /// returns — `now - base >= interval` is NOT equivalent under
    /// floating point, and the mismatch would make polling at the
    /// reported deadline a no-op (a livelock for any caller that
    /// sleeps until `next_deadline`).
    pub fn dead_expiry_due(&self, now: f64) -> bool {
        self.is_up() && now >= self.last_heard + self.cfg.dead_interval
    }

    /// Fire the dead-interval expiry: tear the adjacency down and
    /// report what the reset discarded.
    pub fn step_dead_expiry(&mut self, now: f64) -> Vec<ChannelEvent> {
        let discarded = self.reset(now);
        let mut events = vec![ChannelEvent::PeerDown { reason: DownReason::DeadInterval }];
        events.extend(Self::discard_event(discarded));
        events
    }

    /// The retransmission timer is due: the oldest unacked segment has
    /// waited out its (doubled-per-retry) timeout.
    pub fn retx_due(&self, now: f64) -> bool {
        self.inflight.front().is_some_and(|h| now >= h.last_sent + self.seg_rto(h.retries))
    }

    /// Fire the retransmission timer: re-send the oldest unacked
    /// segment, or — past the retry budget — tear the adjacency down
    /// into the probing state. Callers check [`PeerChannel::retx_due`]
    /// first; events are nonempty exactly on exhaustion.
    pub fn step_retx(&mut self, now: f64) -> (Vec<NodeBody>, Vec<ChannelEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();
        let Some(retries) = self.inflight.front().map(|h| h.retries) else {
            return (out, events);
        };
        if retries >= self.cfg.retry_budget {
            // Graceful degradation: report what was lost, let the node
            // withdraw routes through this adjacency, and keep probing
            // at a relaxing cadence instead of wedging against a grey
            // link.
            let discarded = self.reset(now);
            self.probing = true;
            events.push(ChannelEvent::PeerDown { reason: DownReason::RetryExhausted });
            events.extend(Self::discard_event(discarded));
            return (out, events);
        }
        if let Some(head) = self.inflight.front_mut() {
            head.retries += 1;
            head.retransmitted = true;
            head.last_sent = now;
            out.push(NodeBody::Data { seq: head.seq, lsu: head.msg.clone() });
            self.retx_epoch = now;
        }
        (out, events)
    }

    /// The keepalive timer is due.
    pub fn hello_due(&self, now: f64) -> bool {
        now >= self.next_hello
    }

    /// Fire the keepalive timer: emit one hello and re-arm, at the
    /// exponentially relaxing probe cadence when degraded.
    pub fn step_hello_timer(&mut self, now: f64) -> NodeBody {
        let interval = if self.probing {
            let i = self.probe_interval;
            self.probe_interval = (self.probe_interval * 2.0)
                .min(self.cfg.dead_interval.max(self.cfg.hello_interval));
            i
        } else {
            self.cfg.hello_interval
        };
        self.next_hello = now + interval;
        self.make_hello(now)
    }

    /// The earliest future instant at which [`PeerChannel::poll`] has
    /// work to do.
    pub fn next_deadline(&self) -> f64 {
        let mut t = self.next_hello;
        if self.is_up() {
            t = t.min(self.last_heard + self.cfg.dead_interval);
        }
        if let Some(head) = self.inflight.front() {
            t = t.min(head.last_sent + self.seg_rto(head.retries));
        }
        t
    }

    /// Drop all transport state: the adjacency is gone and sequence
    /// numbers restart from 1 for the next life. Undelivered backlog is
    /// discarded — after re-sync the router re-floods current state,
    /// which supersedes anything queued here. Bumping the session tells
    /// the peer our sequence space restarted, so it re-syncs too
    /// instead of blackholing the new stream against its old cumulative
    /// position. Returns how much undelivered data was discarded
    /// (in-flight, backlog, reorder segment counts) so callers can
    /// report the loss instead of swallowing it; the RTT estimator
    /// deliberately survives.
    fn reset(&mut self, now: f64) -> (u64, u64, u64) {
        let counts =
            (self.inflight.len() as u64, self.backlog.len() as u64, self.reorder.len() as u64);
        if self.mutant != ChannelMutant::SkipSessionBump {
            self.session = self.session.saturating_add(1);
        }
        self.peer_inc = None;
        self.peer_session = 0;
        self.next_seq = 1;
        self.backlog.clear();
        self.inflight.clear();
        self.acked = 0;
        self.delivered = 0;
        self.reorder.clear();
        self.last_heard = now;
        self.rtt_sample = None;
        self.peer_hello = None;
        self.retx_epoch = f64::NEG_INFINITY;
        self.probing = false;
        self.probe_interval = self.cfg.hello_interval;
        self.peer_proven = false;
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdr_net::NodeId;

    fn lsu(from: u32) -> LsuMessage {
        LsuMessage::ack_only(NodeId(from))
    }

    fn cfg() -> ReliableConfig {
        ReliableConfig::default()
    }

    /// A bare hello carrying no timestamps (as from a peer that has
    /// nothing to echo yet).
    fn hello0() -> NodeBody {
        NodeBody::Hello { ts_us: 0, echo_ts_us: 0, hold_us: 0 }
    }

    fn up(ch: &mut PeerChannel, inc: u32, now: f64) {
        let (_, ev) = ch.on_message(inc, 0, 0, 1, hello0(), now);
        assert_eq!(ev, vec![ChannelEvent::PeerUp { incarnation: inc }]);
    }

    #[test]
    fn backoff_schedule_doubles_to_the_cap() {
        // rto_initial 0.1, rto_max 1.6: expected waits 0.1, 0.2, 0.4,
        // 0.8, 1.6, 1.6, ...
        let c = cfg();
        assert_eq!(c.rto(0), 0.1);
        assert_eq!(c.rto(1), 0.2);
        assert_eq!(c.rto(3), 0.8);
        assert_eq!(c.rto(4), 1.6);
        assert_eq!(c.rto(5), 1.6);
        assert_eq!(c.rto(30), 1.6);

        // And the channel follows it exactly under a mock clock. Use a
        // long dead interval so only hello and retransmission timers
        // fire, and step time by next_deadline() — the mock-clock
        // discipline the node event loop itself uses.
        let mut ch = PeerChannel::new(ReliableConfig { dead_interval: 1e9, ..c }, 1, 0.0);
        up(&mut ch, 1, 0.0);
        let sent = ch.send(lsu(0), 0.0);
        assert_eq!(sent.len(), 1);
        let mut expected = Vec::new();
        let mut t = 0.0;
        for k in 0..5u32 {
            t += c.rto(k);
            expected.push(t);
        }
        let mut retx_times = Vec::new();
        let mut now = 0.0;
        let mut iters = 0;
        while retx_times.len() < 5 {
            iters += 1;
            // Livelock guard: polling at next_deadline() must always
            // make progress (the deadline arithmetic in poll() and
            // next_deadline() has to agree bit-for-bit).
            assert!(iters < 200, "livelocked at now={now}, retx so far {retx_times:?}");
            let next = ch.next_deadline();
            assert!(next >= now, "deadlines never move backwards");
            now = next;
            let (out, ev) = ch.poll(now);
            assert!(ev.is_empty(), "no failure inside the budget");
            for b in out {
                if let NodeBody::Data { seq, .. } = b {
                    assert_eq!(seq, 1);
                    retx_times.push(now);
                }
            }
        }
        for (got, want) in retx_times.iter().zip(&expected) {
            assert!((got - want).abs() < 1e-9, "retx at {got}, expected {want}");
        }
    }

    #[test]
    fn retry_exhaustion_declares_the_peer_dead() {
        let c = ReliableConfig { retry_budget: 3, dead_interval: 1e9, ..cfg() };
        let mut ch = PeerChannel::new(c, 1, 0.0);
        up(&mut ch, 1, 0.0);
        ch.send(lsu(0), 0.0);
        let mut down = None;
        let mut retx = 0;
        let mut t = 0.0;
        while down.is_none() && t < 100.0 {
            t = ch.next_deadline().max(t + 1e-3);
            let (out, ev) = ch.poll(t);
            retx += out.iter().filter(|b| matches!(b, NodeBody::Data { .. })).count();
            for e in ev {
                if let ChannelEvent::PeerDown { reason } = e {
                    down = Some(reason);
                }
            }
        }
        assert_eq!(down, Some(DownReason::RetryExhausted));
        assert_eq!(retx, 3, "exactly the budget's worth of retransmissions");
        assert!(!ch.is_up());
        assert!(ch.is_idle(), "transport state cleared on failure");
    }

    #[test]
    fn duplicate_and_reordered_acks_are_tolerated() {
        let mut ch = PeerChannel::new(cfg(), 1, 0.0);
        up(&mut ch, 1, 0.0);
        ch.send(lsu(0), 0.0);
        ch.send(lsu(0), 0.0);
        assert_eq!(ch.in_flight(), 2);
        let (_, ev) = ch.on_message(1, 1, 0, 1, NodeBody::Ack { cum_seq: 2 }, 0.05);
        assert!(ev.is_empty());
        assert_eq!(ch.in_flight(), 0);
        // The same ack again, then a stale one from before: no-ops.
        for cum in [2, 1, 0] {
            let (out, ev) = ch.on_message(1, 1, 0, 1, NodeBody::Ack { cum_seq: cum }, 0.06);
            assert!(out.is_empty() && ev.is_empty(), "duplicate ack must be silent");
        }
        assert_eq!(ch.in_flight(), 0);
    }

    #[test]
    fn receiver_reorders_into_a_gap_free_stream() {
        let mut ch = PeerChannel::new(cfg(), 1, 0.0);
        let mk = |i: u32| NodeBody::Data { seq: i as u64, lsu: lsu(i) };
        // Arrival order 2, 3, 1 — delivery must be 1, 2, 3.
        let (out, ev) = ch.on_message(1, 1, 0, 1, mk(2), 0.0);
        assert_eq!(out, vec![NodeBody::Ack { cum_seq: 0 }], "gap: repeat the cumulative ack");
        assert!(matches!(ev[0], ChannelEvent::PeerUp { .. }));
        let (out, ev) = ch.on_message(1, 1, 0, 1, mk(3), 0.1);
        assert_eq!(out, vec![NodeBody::Ack { cum_seq: 0 }]);
        assert!(ev.is_empty());
        let (out, ev) = ch.on_message(1, 1, 0, 1, mk(1), 0.2);
        assert_eq!(out, vec![NodeBody::Ack { cum_seq: 3 }]);
        let delivered: Vec<u32> = ev
            .iter()
            .map(|e| match e {
                ChannelEvent::Deliver(m) => m.from.0,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(delivered, vec![1, 2, 3]);
        // A duplicate of an old segment re-acks without re-delivering.
        let (out, ev) = ch.on_message(1, 1, 0, 1, mk(2), 0.3);
        assert_eq!(out, vec![NodeBody::Ack { cum_seq: 3 }]);
        assert!(ev.is_empty());
    }

    #[test]
    fn window_limits_flight_and_acks_slide_it() {
        let c = ReliableConfig { window: 2, ..cfg() };
        let mut ch = PeerChannel::new(c, 1, 0.0);
        up(&mut ch, 1, 0.0);
        let mut wire = Vec::new();
        for _ in 0..5 {
            wire.extend(ch.send(lsu(0), 0.0));
        }
        assert_eq!(wire.len(), 2, "window caps initial transmissions");
        assert_eq!(ch.backlog(), 3);
        let (out, _) = ch.on_message(1, 1, 0, 1, NodeBody::Ack { cum_seq: 2 }, 0.1);
        let seqs: Vec<u64> = out
            .iter()
            .map(|b| match b {
                NodeBody::Data { seq, .. } => *seq,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(seqs, vec![3, 4], "ack slides the window");
        assert_eq!(ch.backlog(), 1);
    }

    #[test]
    fn dead_interval_fires_without_traffic() {
        let mut ch = PeerChannel::new(cfg(), 1, 0.0);
        up(&mut ch, 7, 0.0);
        let (_, ev) = ch.poll(0.99);
        assert!(ev.is_empty());
        let (_, ev) = ch.poll(1.0);
        assert_eq!(ev, vec![ChannelEvent::PeerDown { reason: DownReason::DeadInterval }]);
        assert!(!ch.is_up());
    }

    #[test]
    fn restart_resets_and_reports_incarnations() {
        let mut ch = PeerChannel::new(cfg(), 1, 0.0);
        up(&mut ch, 1, 0.0);
        ch.send(lsu(0), 0.0);
        assert_eq!(ch.in_flight(), 1);
        // Data from incarnation 2: the peer restarted.
        let (out, ev) = ch.on_message(2, 1, 0, 1, NodeBody::Data { seq: 1, lsu: lsu(9) }, 0.5);
        assert_eq!(
            ev[0],
            ChannelEvent::PeerRestart { old: 1, new: 2 },
            "restart detected before the body is processed"
        );
        assert_eq!(
            ev[1],
            ChannelEvent::Discarded { in_flight: 1, backlog: 0, reorder: 0 },
            "the reset reports the in-flight segment it threw away"
        );
        assert!(matches!(ev[2], ChannelEvent::Deliver(_)), "new-life data still delivers");
        assert_eq!(out, vec![NodeBody::Ack { cum_seq: 1 }]);
        assert_eq!(ch.incarnation(), Some(2));
        assert_eq!(ch.in_flight(), 0, "old-life flight state discarded");
        // A straggler from incarnation 1 is dropped outright.
        let (out, ev) = ch.on_message(1, 1, 0, 1, NodeBody::Data { seq: 5, lsu: lsu(9) }, 0.6);
        assert!(out.is_empty() && ev.is_empty());
    }

    #[test]
    fn hello_cadence_and_deadline_accounting() {
        let mut ch = PeerChannel::new(cfg(), 1, 0.0);
        let (out, _) = ch.poll(0.0);
        assert!(matches!(out[0], NodeBody::Hello { .. }), "opening hello fires immediately");
        assert_eq!(ch.next_deadline(), 0.2, "down peer: only the hello timer is armed");
        let (out, _) = ch.poll(0.1);
        assert!(out.is_empty());
        let (out, _) = ch.poll(0.2);
        assert_eq!(out.len(), 1);
        up(&mut ch, 1, 0.25);
        // Now the dead interval is armed too.
        assert_eq!(ch.next_deadline(), 0.4f64.min(0.25 + 1.0));
    }

    #[test]
    fn datagrams_addressed_to_another_life_are_ignored() {
        // This node is at incarnation 3; a neighbor still retransmitting
        // into a session built against incarnation 2 must not establish
        // the channel or park anything in the reorder buffer.
        let mut ch = PeerChannel::new(cfg(), 3, 0.0);
        let (out, ev) = ch.on_message(1, 2, 0, 1, NodeBody::Data { seq: 47, lsu: lsu(9) }, 0.0);
        assert!(out.is_empty() && ev.is_empty(), "stale-addressed data must be silent");
        assert!(!ch.is_up());
        assert!(ch.is_idle(), "no reorder pollution from the old session");
        // Hellos with the unknown-receiver wildcard still make contact…
        let (_, ev) = ch.on_message(1, 0, 0, 1, hello0(), 0.1);
        assert_eq!(ev, vec![ChannelEvent::PeerUp { incarnation: 1 }]);
        // …and correctly addressed traffic flows.
        let (out, ev) = ch.on_message(1, 3, 0, 1, NodeBody::Data { seq: 1, lsu: lsu(9) }, 0.2);
        assert_eq!(out, vec![NodeBody::Ack { cum_seq: 1 }]);
        assert!(matches!(ev[0], ChannelEvent::Deliver(_)));
    }

    #[test]
    fn peer_session_bump_forces_a_full_resync() {
        let mut ch = PeerChannel::new(cfg(), 1, 0.0);
        up(&mut ch, 1, 0.0);
        let own = ch.session();
        // Session 1 delivers seq 1; then the peer's channel resets
        // underneath us (same incarnation, session 2) and its sequence
        // space restarts at 1. Without the session tag this would be
        // "a duplicate": acked, never delivered.
        let (_, ev) = ch.on_message(1, 1, 0, 1, NodeBody::Data { seq: 1, lsu: lsu(8) }, 0.1);
        assert!(matches!(ev.last(), Some(ChannelEvent::Deliver(_))));
        let (out, ev) = ch.on_message(1, 1, 0, 2, NodeBody::Data { seq: 1, lsu: lsu(9) }, 0.2);
        assert_eq!(
            ev[0],
            ChannelEvent::PeerDown { reason: DownReason::SessionReset },
            "the node must tear the adjacency down before re-syncing"
        );
        assert_eq!(ev[1], ChannelEvent::PeerUp { incarnation: 1 });
        assert!(matches!(ev[2], ChannelEvent::Deliver(_)), "the new stream's seq 1 delivers");
        assert_eq!(out, vec![NodeBody::Ack { cum_seq: 1 }]);
        assert_eq!(ch.session(), own + 1, "our own stream epoch advanced with the reset");
        // A straggler from the peer's previous stream is dropped.
        let (out, ev) = ch.on_message(1, 1, 0, 1, NodeBody::Data { seq: 2, lsu: lsu(8) }, 0.3);
        assert!(out.is_empty() && ev.is_empty());
    }

    #[test]
    fn own_reset_bumps_the_advertised_session() {
        let mut ch = PeerChannel::new(cfg(), 1, 0.0);
        assert_eq!(ch.session(), 1);
        up(&mut ch, 1, 0.0);
        let (_, ev) = ch.poll(1.0); // dead interval fires
        assert_eq!(ev, vec![ChannelEvent::PeerDown { reason: DownReason::DeadInterval }]);
        assert_eq!(ch.session(), 2, "the next life of this stream is distinguishable");
    }

    #[test]
    fn rtt_estimator_follows_the_rfc6298_recurrences() {
        let mut e = RttEstimator::new(0.1);
        assert_eq!(e.rto(), 0.1, "pre-sample RTO answers the initial value");
        assert_eq!(e.srtt(), None);
        // First sample: SRTT = s, RTTVAR = s/2, RTO = s + 4·(s/2) = 3s.
        e.observe(0.04, 0.05, 1.6);
        assert_eq!(e.srtt(), Some(0.04));
        assert!((e.rto() - 0.12).abs() < 1e-12);
        // Second sample, same value: RTTVAR = 3/4·0.02 + 1/4·0 = 0.015,
        // SRTT stays 0.04, RTO = 0.04 + 0.06 = 0.1.
        e.observe(0.04, 0.05, 1.6);
        assert!((e.rto() - 0.1).abs() < 1e-12);
        // Steady samples converge the variance out and the floor kicks
        // in: SRTT → 0.04 but RTO clamps at 0.05.
        for _ in 0..200 {
            e.observe(0.04, 0.05, 1.6);
        }
        assert_eq!(e.rto(), 0.05, "floor clamps a jitter-free path");
        // Ceiling clamps a pathological sample.
        e.observe(10.0, 0.05, 1.6);
        assert_eq!(e.rto(), 1.6);
    }

    #[test]
    fn acks_feed_the_adaptive_rto() {
        // Park the hello and dead timers far away so next_deadline is
        // the retransmission deadline alone.
        let quiet = ReliableConfig { hello_interval: 1e9, dead_interval: 1e9, ..cfg() };
        let mut ch = PeerChannel::new(quiet, 1, 0.0);
        let _ = ch.poll(0.0);
        up(&mut ch, 1, 0.0);
        assert_eq!(ch.base_rto(), 0.1, "pre-sample base is rto_initial");
        ch.send(lsu(0), 0.0);
        let (_, _) = ch.on_message(1, 1, 0, 1, NodeBody::Ack { cum_seq: 1 }, 0.04);
        assert_eq!(ch.take_rtt_sample(), Some(0.04));
        assert!((ch.base_rto() - 0.12).abs() < 1e-12, "first sample: RTO = 3·RTT");
        // The retransmission deadline uses the adapted base.
        ch.send(lsu(0), 1.0);
        assert!((ch.next_deadline() - (1.0 + 0.12)).abs() < 1e-12);
        // With `adaptive` off the same history leaves the ladder alone.
        let mut fixed = PeerChannel::new(ReliableConfig { adaptive: false, ..quiet }, 1, 0.0);
        let _ = fixed.poll(0.0);
        up(&mut fixed, 1, 0.0);
        fixed.send(lsu(0), 0.0);
        let _ = fixed.on_message(1, 1, 0, 1, NodeBody::Ack { cum_seq: 1 }, 0.04);
        fixed.send(lsu(0), 1.0);
        assert_eq!(fixed.base_rto(), 0.1);
        assert!((fixed.next_deadline() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn karns_rule_skips_retransmitted_segments() {
        let mut ch = PeerChannel::new(ReliableConfig { dead_interval: 1e9, ..cfg() }, 1, 0.0);
        up(&mut ch, 1, 0.0);
        ch.send(lsu(0), 0.0);
        // Let the segment retransmit once, then ack it: the sample is
        // ambiguous (which transmission does the ack answer?), so the
        // estimator must ignore it.
        let (out, _) = ch.poll(0.1);
        assert!(out.iter().any(|b| matches!(b, NodeBody::Data { .. })), "retransmit fired");
        let (_, _) = ch.on_message(1, 1, 0, 1, NodeBody::Ack { cum_seq: 1 }, 0.15);
        assert_eq!(ch.take_rtt_sample(), None, "no sample from a retransmitted segment");
        assert_eq!(ch.base_rto(), 0.1, "estimator untouched");
    }

    #[test]
    fn hello_echo_yields_an_rtt_sample_without_clock_sync() {
        let mut ch = PeerChannel::new(cfg(), 1, 0.0);
        // Our hello at t=1.0 carries ts_us = 1_000_000.
        let (out, _) = ch.poll(1.0);
        let sent_ts = match out.last() {
            Some(NodeBody::Hello { ts_us, .. }) => *ts_us,
            other => panic!("expected a hello, got {other:?}"),
        };
        assert_eq!(sent_ts, 1_000_000);
        // The peer echoes it back 50 ms later having held it for 30 ms:
        // RTT = 1.05 − 1.0 − 0.03 = 0.02.
        let echo = NodeBody::Hello { ts_us: 2_000_000, echo_ts_us: sent_ts, hold_us: 30_000 };
        let (_, ev) = ch.on_message(1, 0, 0, 1, echo, 1.05);
        assert!(matches!(ev[0], ChannelEvent::PeerUp { .. }));
        let sample = ch.take_rtt_sample().expect("echo produced a sample");
        assert!((sample - 0.02).abs() < 1e-9);
        assert!((ch.base_rto() - 0.06f64.max(0.05)).abs() < 1e-9, "estimator fed: RTO = 3·RTT");
        // And our next hello echoes the peer's timestamp with the hold.
        let (out, _) = ch.poll(1.25);
        match out.last() {
            Some(NodeBody::Hello { echo_ts_us, hold_us, .. }) => {
                assert_eq!(*echo_ts_us, 2_000_000);
                assert_eq!(*hold_us, 200_000, "held the peer's timestamp 0.2 s");
            }
            other => panic!("expected a hello, got {other:?}"),
        }
        // A sample outside [0, dead_interval] is rejected.
        let bogus = NodeBody::Hello { ts_us: 0, echo_ts_us: 1, hold_us: 0 };
        let before = ch.base_rto();
        let (_, _) = ch.on_message(1, 0, 0, 1, bogus, 100.0);
        assert_eq!(ch.take_rtt_sample(), None);
        assert_eq!(ch.base_rto(), before);
    }

    #[test]
    fn retry_exhaustion_reports_discards_and_probes() {
        let c = ReliableConfig { retry_budget: 1, ..cfg() };
        let mut ch = PeerChannel::new(c, 1, 0.0);
        up(&mut ch, 1, 0.0);
        ch.send(lsu(0), 0.0);
        ch.send(lsu(0), 0.0);
        // Ladder with no samples: retransmit at 0.1, exhaust one
        // doubled timeout later (step by next_deadline — 0.1 + 0.2 is
        // not exactly 0.3 in floating point).
        let (_, ev) = ch.poll(0.1);
        assert!(ev.is_empty());
        let mut now = 0.1;
        let mut failure = Vec::new();
        while failure.is_empty() {
            now = ch.next_deadline().max(now);
            assert!(now < 2.0, "exhaustion never fired");
            let (_, ev) = ch.poll(now);
            failure = ev;
        }
        assert_eq!(
            failure,
            vec![
                ChannelEvent::PeerDown { reason: DownReason::RetryExhausted },
                ChannelEvent::Discarded { in_flight: 2, backlog: 0, reorder: 0 },
            ],
            "the failure reports both stranded segments, not just the head"
        );
        assert!(ch.is_probing(), "degraded to probing instead of wedging");
        // Probe cadence: each hello doubles the next interval, capped
        // at the dead interval.
        let mut hello_times = Vec::new();
        while hello_times.len() < 5 {
            now = ch.next_deadline().max(now);
            let (out, _) = ch.poll(now);
            if out.iter().any(|b| matches!(b, NodeBody::Hello { .. })) {
                hello_times.push(now);
            }
        }
        let gaps: Vec<f64> =
            hello_times.windows(2).map(|w| ((w[1] - w[0]) * 1e6).round() / 1e6).collect();
        assert_eq!(gaps, vec![0.2, 0.4, 0.8, 1.0], "exponential probe backoff, dead-interval cap");
        // Contact clears probing and restores the keepalive cadence.
        let (_, ev) = ch.on_message(1, 0, 0, 7, hello0(), now + 0.01);
        assert!(matches!(ev[0], ChannelEvent::PeerUp { .. }));
        assert!(!ch.is_probing());
        assert!(ch.next_deadline() <= now + 0.01 + ch.cfg.hello_interval + 1e-9);
    }

    #[test]
    fn reorder_overflow_forces_a_resync() {
        let c = ReliableConfig { max_reorder: 4, ..cfg() };
        let mut ch = PeerChannel::new(c, 1, 0.0);
        up(&mut ch, 1, 0.0);
        let own = ch.session();
        let mk = |i: u64| NodeBody::Data { seq: i, lsu: lsu(9) };
        // Seq 1 never arrives; 3..=6 park in the reorder buffer (at the
        // cap), and the 5th gap segment trips the overflow.
        for seq in 3..=6 {
            let (out, ev) = ch.on_message(1, 1, 0, 1, mk(seq), 0.1);
            assert_eq!(out, vec![NodeBody::Ack { cum_seq: 0 }]);
            assert!(ev.is_empty());
        }
        let (out, ev) = ch.on_message(1, 1, 0, 1, mk(7), 0.2);
        assert!(out.is_empty(), "no ack: the peer must re-sync, not trust our stale position");
        assert_eq!(
            ev,
            vec![
                ChannelEvent::PeerDown { reason: DownReason::ReorderOverflow },
                ChannelEvent::Discarded { in_flight: 0, backlog: 0, reorder: 5 },
            ]
        );
        assert!(!ch.is_up());
        assert!(ch.is_idle(), "buffer bounded: overflow clears it");
        assert_eq!(ch.session(), own + 1, "session bump forces the peer through a full re-sync");
        // In-order traffic never trips the cap no matter how much.
        let mut ok = PeerChannel::new(c, 1, 0.0);
        for seq in 1..=100u64 {
            let (_, ev) = ok.on_message(1, 1, 0, 1, mk(seq), 0.0);
            assert!(ev.iter().all(|e| !matches!(e, ChannelEvent::PeerDown { .. })));
        }
        assert_eq!(ok.delivered(), 100);
    }

    /// Deterministic two-endpoint harness over a 5% i.i.d.-lossy wire:
    /// the adaptive RTO must complete a bulk LSU transfer no slower
    /// than the fixed ladder (the path RTT of 20 ms is well under
    /// `rto_initial`, so the estimator retransmits sooner once
    /// calibrated). This is the PR's A/B acceptance criterion in
    /// miniature; the soak harness repeats it over real sockets.
    #[test]
    fn adaptive_rto_matches_or_beats_the_fixed_ladder_under_loss() {
        const N: u64 = 40;
        const DELAY: f64 = 0.01;
        const LOSS: f64 = 0.05;

        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn unit(state: &mut u64) -> f64 {
            (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
        }

        fn run_transfer(adaptive: bool, seed: u64) -> f64 {
            let c = ReliableConfig { adaptive, dead_interval: 1e9, ..ReliableConfig::default() };
            let mut a = PeerChannel::new(c, 1, 0.0);
            let mut b = PeerChannel::new(c, 1, 0.0);
            let mut rng = seed;
            // (deliver_at, enqueue_order, to_b, sender_session, body)
            let mut wire: Vec<(f64, u64, bool, u32, NodeBody)> = Vec::new();
            let mut order = 0u64;
            let enqueue = |wire: &mut Vec<(f64, u64, bool, u32, NodeBody)>,
                           rng: &mut u64,
                           order: &mut u64,
                           now: f64,
                           to_b: bool,
                           session: u32,
                           body: NodeBody| {
                if unit(rng) >= LOSS {
                    wire.push((now + DELAY, *order, to_b, session, body));
                    *order += 1;
                }
            };
            let mut initial = Vec::new();
            for _ in 0..N {
                initial.extend(a.send(lsu(0), 0.0));
            }
            for body in initial {
                enqueue(&mut wire, &mut rng, &mut order, 0.0, true, a.session(), body);
            }
            let mut now = 0.0;
            while b.delivered() < N {
                let wire_next = wire.iter().map(|e| e.0).fold(f64::INFINITY, f64::min);
                now = wire_next.min(a.next_deadline()).min(b.next_deadline()).max(now);
                assert!(now < 120.0, "transfer wedged (adaptive={adaptive}, seed={seed})");
                // Deliver everything due, in (time, enqueue order).
                let mut due: Vec<_> = Vec::new();
                wire.retain(|e| {
                    if e.0 <= now {
                        due.push(e.clone());
                        false
                    } else {
                        true
                    }
                });
                due.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
                for (_, _, to_b, session, body) in due {
                    let rcv = if to_b { &mut b } else { &mut a };
                    let (replies, _) = rcv.on_message(1, 0, 0, session, body, now);
                    for r in replies {
                        enqueue(&mut wire, &mut rng, &mut order, now, !to_b, rcv.session(), r);
                    }
                }
                let (out, _) = a.poll(now);
                for bdy in out {
                    enqueue(&mut wire, &mut rng, &mut order, now, true, a.session(), bdy);
                }
                let (out, _) = b.poll(now);
                for bdy in out {
                    enqueue(&mut wire, &mut rng, &mut order, now, false, b.session(), bdy);
                }
            }
            now
        }

        let mut adaptive_total = 0.0;
        let mut fixed_total = 0.0;
        for seed in [7u64, 19, 41] {
            adaptive_total += run_transfer(true, seed);
            fixed_total += run_transfer(false, seed);
        }
        assert!(
            adaptive_total <= fixed_total + 1e-9,
            "adaptive RTO must not lose to the fixed ladder: {adaptive_total:.3}s vs {fixed_total:.3}s"
        );
    }

    #[test]
    fn stale_session_acks_cannot_pop_fresh_inflight() {
        // Our channel resets (session 1 → 2) while the peer still holds
        // the old adjacency. Its cumulative ack — computed against our
        // pre-reset stream — arrives addressed to for_session 1. It
        // must not acknowledge segments of the fresh stream: if frame 1
        // of the new stream were lost, "ack 2" would strand it
        // permanently while flushed() fed a false protocol ack to the
        // router (FD raised on a false premise).
        let mut ch = PeerChannel::new(cfg(), 1, 0.0);
        up(&mut ch, 1, 0.0);
        ch.send(lsu(0), 0.0);
        ch.send(lsu(0), 0.0);
        let (_, ev) = ch.poll(1.0); // dead interval: reset, session 1 → 2
        assert!(matches!(ev[0], ChannelEvent::PeerDown { .. }));
        assert_eq!(ch.session(), 2);
        up(&mut ch, 1, 2.0);
        ch.send(lsu(1), 2.0);
        ch.send(lsu(2), 2.0);
        assert_eq!(ch.in_flight(), 2);
        // The peer's stale ack, addressed to the pre-reset stream epoch.
        let (out, ev) = ch.on_message(1, 1, 1, 1, NodeBody::Ack { cum_seq: 2 }, 2.1);
        assert!(out.is_empty() && ev.is_empty(), "stale-session ack must be silent");
        assert_eq!(ch.in_flight(), 2, "fresh segments stay in flight");
        assert!(!ch.flushed());
        // The same ack addressed to the current epoch does count.
        let _ = ch.on_message(1, 1, 2, 1, NodeBody::Ack { cum_seq: 2 }, 2.2);
        assert_eq!(ch.in_flight(), 0);
    }

    #[test]
    fn reorder_buffer_at_exactly_the_bound_survives_and_heals() {
        // max_reorder = 4: four parked segments is legal (the overflow
        // check is strictly greater), and the gap filling in releases
        // everything without a teardown.
        let c = ReliableConfig { max_reorder: 4, ..cfg() };
        let mut ch = PeerChannel::new(c, 1, 0.0);
        up(&mut ch, 1, 0.0);
        let mk = |i: u64| NodeBody::Data { seq: i, lsu: lsu(9) };
        for seq in 2..=5 {
            let (out, ev) = ch.on_message(1, 1, 0, 1, mk(seq), 0.1);
            assert_eq!(out, vec![NodeBody::Ack { cum_seq: 0 }]);
            assert!(ev.is_empty());
        }
        assert_eq!(ch.reorder_len(), 4, "exactly at the bound");
        let (out, ev) = ch.on_message(1, 1, 0, 1, mk(1), 0.2);
        assert_eq!(out, vec![NodeBody::Ack { cum_seq: 5 }]);
        assert_eq!(ev.len(), 5, "the whole run releases in order");
        assert!(ch.is_up(), "no teardown at the exact bound");
        assert_eq!(ch.reorder_len(), 0);
    }

    #[test]
    fn retry_exhaustion_during_a_partition_reports_backlog_then_heals() {
        // A partition strikes with a full window in flight AND a
        // backlog queued behind it: the exhaustion must account for
        // both, and the first contact after the heal re-establishes at
        // a fresh session.
        let c = ReliableConfig { retry_budget: 1, window: 2, dead_interval: 1e9, ..cfg() };
        let mut ch = PeerChannel::new(c, 1, 0.0);
        up(&mut ch, 1, 0.0);
        for i in 0..5 {
            ch.send(lsu(i), 0.0);
        }
        assert_eq!((ch.in_flight(), ch.backlog()), (2, 3));
        let before = ch.session();
        let mut now = 0.0;
        let mut failure = Vec::new();
        while failure.is_empty() {
            now = ch.next_deadline().max(now);
            assert!(now < 10.0, "exhaustion never fired");
            let (_, ev) = ch.poll(now);
            failure = ev;
        }
        assert_eq!(
            failure,
            vec![
                ChannelEvent::PeerDown { reason: DownReason::RetryExhausted },
                ChannelEvent::Discarded { in_flight: 2, backlog: 3, reorder: 0 },
            ],
            "every stranded segment is accounted for, windowed or queued"
        );
        assert_eq!(ch.session(), before + 1);
        assert!(ch.is_probing());
        // The partition heals: the peer's next hello re-establishes.
        let (_, ev) = ch.on_message(1, 0, 0, 3, hello0(), now + 0.5);
        assert_eq!(ev, vec![ChannelEvent::PeerUp { incarnation: 1 }]);
        assert!(!ch.is_probing());
    }

    #[test]
    fn adaptive_backoff_clamps_at_the_ladder_ceiling() {
        // Calibrate the estimator to a fast path, then lose everything:
        // per-retry doubling walks the adaptive base up the ladder and
        // must clamp at rto_max, exactly like the fixed schedule.
        let c =
            ReliableConfig { retry_budget: 12, dead_interval: 1e9, hello_interval: 1e9, ..cfg() };
        let mut ch = PeerChannel::new(c, 1, 0.0);
        let _ = ch.poll(0.0); // park the opening hello a hello_interval away
        up(&mut ch, 1, 0.0);
        ch.send(lsu(0), 0.0);
        let _ = ch.on_message(1, 1, 0, 1, NodeBody::Ack { cum_seq: 1 }, 0.04);
        assert!((ch.base_rto() - 0.12).abs() < 1e-12, "calibrated base: 3·RTT");
        ch.send(lsu(0), 1.0);
        let mut gaps = Vec::new();
        let mut last = 1.0;
        for _ in 0..8 {
            let now = ch.next_deadline();
            let (out, ev) = ch.poll(now);
            assert!(ev.is_empty());
            assert!(out.iter().any(|b| matches!(b, NodeBody::Data { .. })));
            gaps.push(now - last);
            last = now;
        }
        // 0.12, 0.24, 0.48, 0.96, then the 1.6 ceiling forever.
        let want = [0.12, 0.24, 0.48, 0.96, 1.6, 1.6, 1.6, 1.6];
        for (g, w) in gaps.iter().zip(want) {
            assert!((g - w).abs() < 1e-9, "gaps {gaps:?} expected {want:?}");
        }
        // The fixed ladder clamps identically, far past any budget (the
        // doubling shift saturates instead of overflowing).
        assert_eq!(cfg().rto(31), cfg().rto_max);
    }

    #[test]
    fn mutants_are_observably_broken() {
        // Sanity for the checker's sabotage knobs: each mutant differs
        // from the shipping protocol in exactly the way the transport
        // model checker's counterexamples rely on.
        // SkipSessionBump: a reset leaves the advertised session alone.
        let mut m = PeerChannel::with_mutant(cfg(), 1, 0.0, ChannelMutant::SkipSessionBump);
        up(&mut m, 1, 0.0);
        let _ = m.poll(1.0);
        assert_eq!(m.session(), 1, "the reset is invisible on the wire");
        // IgnoreAddressing: traffic for another life establishes us.
        let mut m = PeerChannel::with_mutant(cfg(), 3, 0.0, ChannelMutant::IgnoreAddressing);
        let (_, ev) = m.on_message(1, 2, 0, 1, hello0(), 0.0);
        assert!(matches!(ev[0], ChannelEvent::PeerUp { .. }));
        // AckBeyondDelivered: a parked segment is claimed as delivered.
        let mut m = PeerChannel::with_mutant(cfg(), 1, 0.0, ChannelMutant::AckBeyondDelivered);
        up(&mut m, 1, 0.0);
        let (out, _) = m.on_message(1, 1, 0, 1, NodeBody::Data { seq: 3, lsu: lsu(9) }, 0.1);
        assert_eq!(out, vec![NodeBody::Ack { cum_seq: 3 }], "claims what it never delivered");
    }
}
