//! Per-neighbor reliable transport over lossy UDP.
//!
//! MPDA's correctness argument (Theorem 3) assumes the control channel
//! delivers LSUs to each neighbor **reliably and in order** — the
//! simulator models that with a link-layer ARQ abstraction; a real
//! deployment has to earn it. [`PeerChannel`] provides exactly that
//! contract on top of a datagram socket:
//!
//! * **Hello/keepalive** — a `Hello` every [`ReliableConfig::hello_interval`];
//!   silence for [`ReliableConfig::dead_interval`] declares the peer
//!   dead ([`ChannelEvent::PeerDown`]), which the node maps onto the
//!   same `Delete`-LSU withdrawal path as a simulated link cut.
//! * **Sliding-window data transfer** — LSUs get consecutive sequence
//!   numbers; at most [`ReliableConfig::window`] are in flight; the
//!   receiver buffers out-of-order arrivals and releases a strictly
//!   in-order, gap-free, duplicate-free stream to the router.
//! * **Ack-driven retransmission** — cumulative acks; the oldest
//!   unacked segment retransmits on a timeout that doubles per attempt
//!   from [`ReliableConfig::rto_initial`] up to
//!   [`ReliableConfig::rto_max`]; exhausting
//!   [`ReliableConfig::retry_budget`] attempts declares the peer dead.
//!   Duplicate acks (cumulative sequence not advancing) are tolerated
//!   silently — UDP duplicates a reordered ack at will.
//! * **Incarnation-tagged re-sync** — every datagram carries the
//!   sender's incarnation (the chaos harness's scheme: restarts
//!   increment it, it is never 0). A higher incarnation than the
//!   current adjacency means the peer restarted and lost all protocol
//!   state: the channel resets and reports
//!   [`ChannelEvent::PeerRestart`] so the node can tear the adjacency
//!   down and re-synchronize from scratch. Lower incarnations are stale
//!   datagrams from a previous life and are dropped.
//! * **Addressed datagrams** — every datagram also carries the
//!   incarnation of the *receiver* the sender believes it is talking
//!   to (`for_inc`; 0 while unknown). A channel accepts only datagrams
//!   addressed to its node's current life: after a restart, a
//!   neighbor's retransmissions to the previous incarnation would
//!   otherwise establish the fresh channel and pollute its reorder
//!   buffer with old-session sequence numbers.
//! * **Session-tagged streams** — each datagram carries the sender's
//!   per-adjacency stream epoch (`session`, bumped on every channel
//!   reset). Without it, a one-sided reset (this side declared dead
//!   during an asymmetric loss burst, then re-upped at the same
//!   incarnation) restarts the sequence space invisibly: fresh
//!   segments numbered below the receiver's cumulative position are
//!   acked as duplicates but never delivered — a silent blackhole —
//!   while high-numbered in-flight segments park in the peer's reorder
//!   buffer forever. A session newer than the one the adjacency was
//!   established with forces a full re-sync
//!   ([`ChannelEvent::PeerDown`] with [`DownReason::SessionReset`],
//!   then [`ChannelEvent::PeerUp`]); an older one is a stale straggler
//!   and is dropped.
//!
//! Everything here is deterministic-core code: time arrives as explicit
//! `now` seconds, outputs are [`NodeBody`] values for the node to
//! envelope and frame. No sockets, no clocks, no randomness — the
//! backoff schedule and failure decisions are pure functions of the
//! event history, which is what makes them unit-testable with a mock
//! clock and seed-stable under the soak harness.

use mdr_proto::{LsuMessage, NodeBody};
use std::collections::{BTreeMap, VecDeque};

/// Timer and budget knobs for one adjacency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliableConfig {
    /// Seconds between keepalive `Hello`s.
    pub hello_interval: f64,
    /// Seconds of silence after which a peer is declared dead.
    pub dead_interval: f64,
    /// First retransmission timeout (seconds); attempt `k` waits
    /// `rto_initial · 2^k`, capped at [`ReliableConfig::rto_max`].
    pub rto_initial: f64,
    /// Ceiling on the per-attempt retransmission timeout (seconds).
    pub rto_max: f64,
    /// Retransmissions of one segment before the peer is declared dead.
    pub retry_budget: u32,
    /// Maximum unacked segments in flight.
    pub window: usize,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            hello_interval: 0.2,
            dead_interval: 1.0,
            rto_initial: 0.1,
            rto_max: 1.6,
            retry_budget: 6,
            window: 16,
        }
    }
}

impl ReliableConfig {
    /// The timeout before retransmission attempt number `retries + 1`
    /// of a segment already sent `retries + 1` times... i.e. after the
    /// segment has been transmitted `retries` extra times already:
    /// `rto_initial · 2^retries`, capped at `rto_max`.
    pub fn rto(&self, retries: u32) -> f64 {
        let factor = 2.0f64.powi(retries.min(30) as i32);
        (self.rto_initial * factor).min(self.rto_max)
    }
}

/// Why an adjacency went down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DownReason {
    /// Nothing heard for the dead interval.
    DeadInterval,
    /// A segment exhausted its retransmission budget.
    RetryExhausted,
    /// The peer came back with a higher incarnation (reported via
    /// [`ChannelEvent::PeerRestart`], which implies a down/up pair).
    Restarted,
    /// The peer's transport reset without a restart (its stream session
    /// advanced at an unchanged incarnation): its sequence space is
    /// gone, so the adjacency re-synchronizes from scratch.
    SessionReset,
}

impl DownReason {
    /// Stable snake-case label for telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            DownReason::DeadInterval => "dead_interval",
            DownReason::RetryExhausted => "retry_exhausted",
            DownReason::Restarted => "restarted",
            DownReason::SessionReset => "session_reset",
        }
    }
}

/// What the channel tells the node.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelEvent {
    /// First contact: the adjacency is up at this peer incarnation.
    PeerUp {
        /// The peer's incarnation.
        incarnation: u32,
    },
    /// The peer restarted (higher incarnation seen). The channel has
    /// already reset; the node must tear down and re-establish the
    /// adjacency.
    PeerRestart {
        /// Incarnation of the previous life.
        old: u32,
        /// Incarnation of the new life.
        new: u32,
    },
    /// The adjacency failed.
    PeerDown {
        /// Why.
        reason: DownReason,
    },
    /// One in-order LSU for the router.
    Deliver(LsuMessage),
}

#[derive(Debug, Clone, PartialEq)]
struct InFlight {
    seq: u64,
    msg: LsuMessage,
    last_sent: f64,
    retries: u32,
    /// Karn's rule: a retransmitted segment yields no RTT sample.
    retransmitted: bool,
}

/// Reliable, ordered LSU transfer plus failure detection toward one
/// neighbor.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerChannel {
    cfg: ReliableConfig,
    /// Incarnation of the node hosting this channel: the only
    /// destination incarnation (besides the 0 wildcard) whose datagrams
    /// this channel accepts.
    local_inc: u32,
    /// Incarnation of the live adjacency; `None` while down.
    peer_inc: Option<u32>,
    /// The peer's stream session the adjacency was established with.
    peer_session: u32,
    /// This side's own stream epoch (≥ 1; bumped on every reset).
    session: u32,
    // --- send side ---
    next_seq: u64,
    backlog: VecDeque<LsuMessage>,
    inflight: VecDeque<InFlight>,
    acked: u64,
    // --- receive side ---
    delivered: u64,
    reorder: BTreeMap<u64, LsuMessage>,
    // --- timers / stats ---
    last_heard: f64,
    next_hello: f64,
    rtt_sample: Option<f64>,
}

impl PeerChannel {
    /// A fresh (down) channel for a node at incarnation `local_inc`;
    /// the first [`PeerChannel::poll`] at or after `now` emits the
    /// opening `Hello`.
    pub fn new(cfg: ReliableConfig, local_inc: u32, now: f64) -> Self {
        PeerChannel {
            cfg,
            local_inc,
            peer_inc: None,
            peer_session: 0,
            session: 1,
            next_seq: 1,
            backlog: VecDeque::new(),
            inflight: VecDeque::new(),
            acked: 0,
            delivered: 0,
            reorder: BTreeMap::new(),
            last_heard: now,
            next_hello: now,
            rtt_sample: None,
        }
    }

    /// The adjacency is established.
    pub fn is_up(&self) -> bool {
        self.peer_inc.is_some()
    }

    /// Incarnation of the live adjacency.
    pub fn incarnation(&self) -> Option<u32> {
        self.peer_inc
    }

    /// This side's current stream epoch — stamped on every outgoing
    /// datagram of this adjacency.
    pub fn session(&self) -> u32 {
        self.session
    }

    /// Unacked segments in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Segments queued behind the window.
    pub fn backlog(&self) -> usize {
        self.backlog.len()
    }

    /// In-order segments delivered since the adjacency (re)established.
    /// Nonzero proves the peer reset its send sequence toward us — and
    /// since this channel only accepts datagrams addressed to our
    /// current incarnation, that the peer *processed* it (tearing down
    /// any routes through our previous life first). The restart
    /// quarantine in [`crate::core`] keys on exactly this.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// True when nothing is queued, in flight, or buffered — the
    /// channel's half of the convergence predicate.
    pub fn is_idle(&self) -> bool {
        self.backlog.is_empty() && self.inflight.is_empty() && self.reorder.is_empty()
    }

    /// Every LSU ever queued on this adjacency has been transport-acked
    /// by the peer. Because the peer's pump hands each in-order segment
    /// to its router *before* its cumulative ack reaches the wire, a
    /// flushed channel proves the peer has **processed** everything we
    /// sent — the exact premise MPDA's ACTIVE phase needs before
    /// raising FD (see the ack substitution in [`crate::core`]).
    pub fn flushed(&self) -> bool {
        self.backlog.is_empty() && self.inflight.is_empty()
    }

    /// Take the RTT sample produced by the most recent ack, if any
    /// (cleared on read; retransmitted segments never produce one).
    pub fn take_rtt_sample(&mut self) -> Option<f64> {
        self.rtt_sample.take()
    }

    /// Queue one LSU for reliable in-order delivery and return any
    /// segments that fit the window right now.
    pub fn send(&mut self, msg: LsuMessage, now: f64) -> Vec<NodeBody> {
        self.backlog.push_back(msg);
        self.fill_window(now)
    }

    fn fill_window(&mut self, now: f64) -> Vec<NodeBody> {
        let mut out = Vec::new();
        while self.inflight.len() < self.cfg.window {
            let Some(msg) = self.backlog.pop_front() else { break };
            let seq = self.next_seq;
            self.next_seq += 1;
            self.inflight.push_back(InFlight {
                seq,
                msg: msg.clone(),
                last_sent: now,
                retries: 0,
                retransmitted: false,
            });
            out.push(NodeBody::Data { seq, lsu: msg });
        }
        out
    }

    /// Handle one decoded body from this peer, stamped with the
    /// sender's `incarnation`, the incarnation it addressed
    /// (`for_inc`), and its stream `session`. Returns bodies to
    /// transmit back and events for the node.
    pub fn on_message(
        &mut self,
        incarnation: u32,
        for_inc: u32,
        session: u32,
        body: NodeBody,
        now: f64,
    ) -> (Vec<NodeBody>, Vec<ChannelEvent>) {
        let mut events = Vec::new();
        if for_inc != 0 && for_inc != self.local_inc {
            // Addressed to a different life of this node — traffic (or
            // retransmissions) from a session built against an
            // incarnation we no longer are. Accepting it would let a
            // neighbor's stale stream establish or pollute a fresh
            // channel.
            return (Vec::new(), events);
        }
        match self.peer_inc {
            None => {
                self.peer_inc = Some(incarnation);
                self.peer_session = session;
                self.last_heard = now;
                events.push(ChannelEvent::PeerUp { incarnation });
            }
            Some(cur) if incarnation > cur => {
                // The peer restarted: everything it knew — our
                // adjacency, every sequence number — is gone. Reset and
                // re-establish at the new incarnation.
                self.reset(now);
                self.peer_inc = Some(incarnation);
                self.peer_session = session;
                self.last_heard = now;
                events.push(ChannelEvent::PeerRestart { old: cur, new: incarnation });
            }
            Some(cur) if incarnation < cur => {
                // A stale datagram from a previous life, still floating
                // around the network. Dropping it is the whole point of
                // incarnation tags.
                return (Vec::new(), events);
            }
            Some(_) if session > self.peer_session => {
                // Same process, new stream: the peer's channel reset
                // underneath us (it declared us dead during an
                // asymmetric loss burst, say) and its sequence space
                // restarted. Re-synchronize from scratch — continuing
                // with our cumulative position would silently blackhole
                // its fresh low-numbered segments as "duplicates". The
                // reset-then-adopt below cannot ping-pong: the peer
                // meets our own session bump with its adjacency already
                // cleared, and a fresh adoption triggers nothing.
                self.reset(now);
                self.peer_inc = Some(incarnation);
                self.peer_session = session;
                self.last_heard = now;
                events.push(ChannelEvent::PeerDown { reason: DownReason::SessionReset });
                events.push(ChannelEvent::PeerUp { incarnation });
            }
            Some(_) if session < self.peer_session => {
                // Straggler from the peer's previous stream.
                return (Vec::new(), events);
            }
            Some(_) => {
                self.last_heard = now;
            }
        }

        let mut out = Vec::new();
        match body {
            NodeBody::Hello => {}
            NodeBody::Data { seq, lsu } => {
                if seq > self.delivered {
                    self.reorder.insert(seq, lsu);
                    // Release the contiguous prefix in order.
                    while let Some(msg) = self.reorder.remove(&(self.delivered + 1)) {
                        self.delivered += 1;
                        events.push(ChannelEvent::Deliver(msg));
                    }
                }
                // Always ack with the cumulative position: a duplicate
                // or out-of-order segment means our previous ack was
                // lost or is still in flight, so repeat it.
                out.push(NodeBody::Ack { cum_seq: self.delivered });
            }
            NodeBody::Ack { cum_seq } => {
                // Duplicate/reordered acks (cum_seq <= acked) fall
                // through both loops untouched: tolerated, not fatal.
                if cum_seq > self.acked {
                    self.acked = cum_seq;
                    while self.inflight.front().is_some_and(|f| f.seq <= cum_seq) {
                        if let Some(f) = self.inflight.pop_front() {
                            if !f.retransmitted {
                                self.rtt_sample = Some((now - f.last_sent).max(0.0));
                            }
                        }
                    }
                    out.extend(self.fill_window(now));
                }
            }
        }
        (out, events)
    }

    /// Drive timers at `now`: keepalives, retransmissions, failure
    /// detection. Call at least once per [`PeerChannel::next_deadline`].
    pub fn poll(&mut self, now: f64) -> (Vec<NodeBody>, Vec<ChannelEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();

        // Failure detection first: a dead peer gets no retransmissions.
        // Deadline comparisons use the exact `base + interval` sums that
        // `next_deadline` returns — `now - base >= interval` is NOT
        // equivalent under floating point, and the mismatch would make
        // polling at the reported deadline a no-op (a livelock for any
        // caller that sleeps until `next_deadline`).
        if self.is_up() && now >= self.last_heard + self.cfg.dead_interval {
            self.reset(now);
            events.push(ChannelEvent::PeerDown { reason: DownReason::DeadInterval });
            return (out, events);
        }
        if let Some(head) = self.inflight.front_mut() {
            if now >= head.last_sent + self.cfg.rto(head.retries) {
                if head.retries >= self.cfg.retry_budget {
                    self.reset(now);
                    events.push(ChannelEvent::PeerDown { reason: DownReason::RetryExhausted });
                    return (out, events);
                }
                head.retries += 1;
                head.retransmitted = true;
                head.last_sent = now;
                out.push(NodeBody::Data { seq: head.seq, lsu: head.msg.clone() });
            }
        }

        if now >= self.next_hello {
            self.next_hello = now + self.cfg.hello_interval;
            out.push(NodeBody::Hello);
        }
        (out, events)
    }

    /// The earliest future instant at which [`PeerChannel::poll`] has
    /// work to do.
    pub fn next_deadline(&self) -> f64 {
        let mut t = self.next_hello;
        if self.is_up() {
            t = t.min(self.last_heard + self.cfg.dead_interval);
        }
        if let Some(head) = self.inflight.front() {
            t = t.min(head.last_sent + self.cfg.rto(head.retries));
        }
        t
    }

    /// Drop all transport state: the adjacency is gone and sequence
    /// numbers restart from 1 for the next life. Undelivered backlog is
    /// discarded — after re-sync the router re-floods current state,
    /// which supersedes anything queued here. Bumping the session tells
    /// the peer our sequence space restarted, so it re-syncs too
    /// instead of blackholing the new stream against its old cumulative
    /// position.
    fn reset(&mut self, now: f64) {
        self.session = self.session.saturating_add(1);
        self.peer_inc = None;
        self.peer_session = 0;
        self.next_seq = 1;
        self.backlog.clear();
        self.inflight.clear();
        self.acked = 0;
        self.delivered = 0;
        self.reorder.clear();
        self.last_heard = now;
        self.rtt_sample = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdr_net::NodeId;

    fn lsu(from: u32) -> LsuMessage {
        LsuMessage::ack_only(NodeId(from))
    }

    fn cfg() -> ReliableConfig {
        ReliableConfig::default()
    }

    fn up(ch: &mut PeerChannel, inc: u32, now: f64) {
        let (_, ev) = ch.on_message(inc, 0, 1, NodeBody::Hello, now);
        assert_eq!(ev, vec![ChannelEvent::PeerUp { incarnation: inc }]);
    }

    #[test]
    fn backoff_schedule_doubles_to_the_cap() {
        // rto_initial 0.1, rto_max 1.6: expected waits 0.1, 0.2, 0.4,
        // 0.8, 1.6, 1.6, ...
        let c = cfg();
        assert_eq!(c.rto(0), 0.1);
        assert_eq!(c.rto(1), 0.2);
        assert_eq!(c.rto(3), 0.8);
        assert_eq!(c.rto(4), 1.6);
        assert_eq!(c.rto(5), 1.6);
        assert_eq!(c.rto(30), 1.6);

        // And the channel follows it exactly under a mock clock. Use a
        // long dead interval so only hello and retransmission timers
        // fire, and step time by next_deadline() — the mock-clock
        // discipline the node event loop itself uses.
        let mut ch = PeerChannel::new(ReliableConfig { dead_interval: 1e9, ..c }, 1, 0.0);
        up(&mut ch, 1, 0.0);
        let sent = ch.send(lsu(0), 0.0);
        assert_eq!(sent.len(), 1);
        let mut expected = Vec::new();
        let mut t = 0.0;
        for k in 0..5u32 {
            t += c.rto(k);
            expected.push(t);
        }
        let mut retx_times = Vec::new();
        let mut now = 0.0;
        let mut iters = 0;
        while retx_times.len() < 5 {
            iters += 1;
            // Livelock guard: polling at next_deadline() must always
            // make progress (the deadline arithmetic in poll() and
            // next_deadline() has to agree bit-for-bit).
            assert!(iters < 200, "livelocked at now={now}, retx so far {retx_times:?}");
            let next = ch.next_deadline();
            assert!(next >= now, "deadlines never move backwards");
            now = next;
            let (out, ev) = ch.poll(now);
            assert!(ev.is_empty(), "no failure inside the budget");
            for b in out {
                if let NodeBody::Data { seq, .. } = b {
                    assert_eq!(seq, 1);
                    retx_times.push(now);
                }
            }
        }
        for (got, want) in retx_times.iter().zip(&expected) {
            assert!((got - want).abs() < 1e-9, "retx at {got}, expected {want}");
        }
    }

    #[test]
    fn retry_exhaustion_declares_the_peer_dead() {
        let c = ReliableConfig { retry_budget: 3, dead_interval: 1e9, ..cfg() };
        let mut ch = PeerChannel::new(c, 1, 0.0);
        up(&mut ch, 1, 0.0);
        ch.send(lsu(0), 0.0);
        let mut down = None;
        let mut retx = 0;
        let mut t = 0.0;
        while down.is_none() && t < 100.0 {
            t = ch.next_deadline().max(t + 1e-3);
            let (out, ev) = ch.poll(t);
            retx += out.iter().filter(|b| matches!(b, NodeBody::Data { .. })).count();
            for e in ev {
                if let ChannelEvent::PeerDown { reason } = e {
                    down = Some(reason);
                }
            }
        }
        assert_eq!(down, Some(DownReason::RetryExhausted));
        assert_eq!(retx, 3, "exactly the budget's worth of retransmissions");
        assert!(!ch.is_up());
        assert!(ch.is_idle(), "transport state cleared on failure");
    }

    #[test]
    fn duplicate_and_reordered_acks_are_tolerated() {
        let mut ch = PeerChannel::new(cfg(), 1, 0.0);
        up(&mut ch, 1, 0.0);
        ch.send(lsu(0), 0.0);
        ch.send(lsu(0), 0.0);
        assert_eq!(ch.in_flight(), 2);
        let (_, ev) = ch.on_message(1, 1, 1, NodeBody::Ack { cum_seq: 2 }, 0.05);
        assert!(ev.is_empty());
        assert_eq!(ch.in_flight(), 0);
        // The same ack again, then a stale one from before: no-ops.
        for cum in [2, 1, 0] {
            let (out, ev) = ch.on_message(1, 1, 1, NodeBody::Ack { cum_seq: cum }, 0.06);
            assert!(out.is_empty() && ev.is_empty(), "duplicate ack must be silent");
        }
        assert_eq!(ch.in_flight(), 0);
    }

    #[test]
    fn receiver_reorders_into_a_gap_free_stream() {
        let mut ch = PeerChannel::new(cfg(), 1, 0.0);
        let mk = |i: u32| NodeBody::Data { seq: i as u64, lsu: lsu(i) };
        // Arrival order 2, 3, 1 — delivery must be 1, 2, 3.
        let (out, ev) = ch.on_message(1, 1, 1, mk(2), 0.0);
        assert_eq!(out, vec![NodeBody::Ack { cum_seq: 0 }], "gap: repeat the cumulative ack");
        assert!(matches!(ev[0], ChannelEvent::PeerUp { .. }));
        let (out, ev) = ch.on_message(1, 1, 1, mk(3), 0.1);
        assert_eq!(out, vec![NodeBody::Ack { cum_seq: 0 }]);
        assert!(ev.is_empty());
        let (out, ev) = ch.on_message(1, 1, 1, mk(1), 0.2);
        assert_eq!(out, vec![NodeBody::Ack { cum_seq: 3 }]);
        let delivered: Vec<u32> = ev
            .iter()
            .map(|e| match e {
                ChannelEvent::Deliver(m) => m.from.0,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(delivered, vec![1, 2, 3]);
        // A duplicate of an old segment re-acks without re-delivering.
        let (out, ev) = ch.on_message(1, 1, 1, mk(2), 0.3);
        assert_eq!(out, vec![NodeBody::Ack { cum_seq: 3 }]);
        assert!(ev.is_empty());
    }

    #[test]
    fn window_limits_flight_and_acks_slide_it() {
        let c = ReliableConfig { window: 2, ..cfg() };
        let mut ch = PeerChannel::new(c, 1, 0.0);
        up(&mut ch, 1, 0.0);
        let mut wire = Vec::new();
        for _ in 0..5 {
            wire.extend(ch.send(lsu(0), 0.0));
        }
        assert_eq!(wire.len(), 2, "window caps initial transmissions");
        assert_eq!(ch.backlog(), 3);
        let (out, _) = ch.on_message(1, 1, 1, NodeBody::Ack { cum_seq: 2 }, 0.1);
        let seqs: Vec<u64> = out
            .iter()
            .map(|b| match b {
                NodeBody::Data { seq, .. } => *seq,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(seqs, vec![3, 4], "ack slides the window");
        assert_eq!(ch.backlog(), 1);
    }

    #[test]
    fn dead_interval_fires_without_traffic() {
        let mut ch = PeerChannel::new(cfg(), 1, 0.0);
        up(&mut ch, 7, 0.0);
        let (_, ev) = ch.poll(0.99);
        assert!(ev.is_empty());
        let (_, ev) = ch.poll(1.0);
        assert_eq!(ev, vec![ChannelEvent::PeerDown { reason: DownReason::DeadInterval }]);
        assert!(!ch.is_up());
    }

    #[test]
    fn restart_resets_and_reports_incarnations() {
        let mut ch = PeerChannel::new(cfg(), 1, 0.0);
        up(&mut ch, 1, 0.0);
        ch.send(lsu(0), 0.0);
        assert_eq!(ch.in_flight(), 1);
        // Data from incarnation 2: the peer restarted.
        let (out, ev) = ch.on_message(2, 1, 1, NodeBody::Data { seq: 1, lsu: lsu(9) }, 0.5);
        assert_eq!(
            ev[0],
            ChannelEvent::PeerRestart { old: 1, new: 2 },
            "restart detected before the body is processed"
        );
        assert!(matches!(ev[1], ChannelEvent::Deliver(_)), "new-life data still delivers");
        assert_eq!(out, vec![NodeBody::Ack { cum_seq: 1 }]);
        assert_eq!(ch.incarnation(), Some(2));
        assert_eq!(ch.in_flight(), 0, "old-life flight state discarded");
        // A straggler from incarnation 1 is dropped outright.
        let (out, ev) = ch.on_message(1, 1, 1, NodeBody::Data { seq: 5, lsu: lsu(9) }, 0.6);
        assert!(out.is_empty() && ev.is_empty());
    }

    #[test]
    fn hello_cadence_and_deadline_accounting() {
        let mut ch = PeerChannel::new(cfg(), 1, 0.0);
        let (out, _) = ch.poll(0.0);
        assert!(matches!(out[0], NodeBody::Hello), "opening hello fires immediately");
        assert_eq!(ch.next_deadline(), 0.2, "down peer: only the hello timer is armed");
        let (out, _) = ch.poll(0.1);
        assert!(out.is_empty());
        let (out, _) = ch.poll(0.2);
        assert_eq!(out.len(), 1);
        up(&mut ch, 1, 0.25);
        // Now the dead interval is armed too.
        assert_eq!(ch.next_deadline(), 0.4f64.min(0.25 + 1.0));
    }

    #[test]
    fn datagrams_addressed_to_another_life_are_ignored() {
        // This node is at incarnation 3; a neighbor still retransmitting
        // into a session built against incarnation 2 must not establish
        // the channel or park anything in the reorder buffer.
        let mut ch = PeerChannel::new(cfg(), 3, 0.0);
        let (out, ev) = ch.on_message(1, 2, 1, NodeBody::Data { seq: 47, lsu: lsu(9) }, 0.0);
        assert!(out.is_empty() && ev.is_empty(), "stale-addressed data must be silent");
        assert!(!ch.is_up());
        assert!(ch.is_idle(), "no reorder pollution from the old session");
        // Hellos with the unknown-receiver wildcard still make contact…
        let (_, ev) = ch.on_message(1, 0, 1, NodeBody::Hello, 0.1);
        assert_eq!(ev, vec![ChannelEvent::PeerUp { incarnation: 1 }]);
        // …and correctly addressed traffic flows.
        let (out, ev) = ch.on_message(1, 3, 1, NodeBody::Data { seq: 1, lsu: lsu(9) }, 0.2);
        assert_eq!(out, vec![NodeBody::Ack { cum_seq: 1 }]);
        assert!(matches!(ev[0], ChannelEvent::Deliver(_)));
    }

    #[test]
    fn peer_session_bump_forces_a_full_resync() {
        let mut ch = PeerChannel::new(cfg(), 1, 0.0);
        up(&mut ch, 1, 0.0);
        let own = ch.session();
        // Session 1 delivers seq 1; then the peer's channel resets
        // underneath us (same incarnation, session 2) and its sequence
        // space restarts at 1. Without the session tag this would be
        // "a duplicate": acked, never delivered.
        let (_, ev) = ch.on_message(1, 1, 1, NodeBody::Data { seq: 1, lsu: lsu(8) }, 0.1);
        assert!(matches!(ev.last(), Some(ChannelEvent::Deliver(_))));
        let (out, ev) = ch.on_message(1, 1, 2, NodeBody::Data { seq: 1, lsu: lsu(9) }, 0.2);
        assert_eq!(
            ev[0],
            ChannelEvent::PeerDown { reason: DownReason::SessionReset },
            "the node must tear the adjacency down before re-syncing"
        );
        assert_eq!(ev[1], ChannelEvent::PeerUp { incarnation: 1 });
        assert!(matches!(ev[2], ChannelEvent::Deliver(_)), "the new stream's seq 1 delivers");
        assert_eq!(out, vec![NodeBody::Ack { cum_seq: 1 }]);
        assert_eq!(ch.session(), own + 1, "our own stream epoch advanced with the reset");
        // A straggler from the peer's previous stream is dropped.
        let (out, ev) = ch.on_message(1, 1, 1, NodeBody::Data { seq: 2, lsu: lsu(8) }, 0.3);
        assert!(out.is_empty() && ev.is_empty());
    }

    #[test]
    fn own_reset_bumps_the_advertised_session() {
        let mut ch = PeerChannel::new(cfg(), 1, 0.0);
        assert_eq!(ch.session(), 1);
        up(&mut ch, 1, 0.0);
        let (_, ev) = ch.poll(1.0); // dead interval fires
        assert_eq!(ev, vec![ChannelEvent::PeerDown { reason: DownReason::DeadInterval }]);
        assert_eq!(ch.session(), 2, "the next life of this stream is distinguishable");
    }
}
