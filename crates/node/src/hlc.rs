//! Hybrid logical clocks (Kulkarni et al.): physical time for human
//! legibility, a logical component for causality.
//!
//! Every datagram and every telemetry record a node emits carries an
//! [`HlcStamp`] `(l, c)`: `l` is the largest physical timestamp (in
//! integer microseconds) the node has seen, `c` breaks ties among
//! events sharing one `l`. Stamps are totally ordered lexicographically
//! and respect causality — if event `a` happened-before event `b`
//! (same process, or `b` received a message carrying `a`'s stamp), then
//! `stamp(a) < stamp(b)` — so sorting the per-process JSONL traces of a
//! soak run by `(l, c, node)` yields a single history that never shows
//! an effect before its cause, even though the processes' wall clocks
//! were never synchronized. The merged-trace LFI audit leans on exactly
//! that property.

use mdr_proto::HlcStamp;

/// One process's hybrid logical clock.
///
/// Deterministic-core discipline: physical time arrives as an explicit
/// `now` argument (seconds), never from a syscall, so tests drive the
/// clock with a mock schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HybridClock {
    l: u64,
    c: u32,
}

fn micros(now: f64) -> u64 {
    // Negative or non-finite "physical" time clamps to zero: the clock
    // then degrades to a plain Lamport clock, which is still causally
    // sound.
    if now.is_finite() && now > 0.0 {
        (now * 1e6) as u64
    } else {
        0
    }
}

impl HybridClock {
    /// A clock that has seen nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current stamp without advancing (the stamp of the *previous*
    /// event).
    pub fn stamp(&self) -> HlcStamp {
        HlcStamp { l: self.l, c: self.c }
    }

    /// Advance for a local event (send or telemetry record) at physical
    /// time `now` (seconds) and return the event's stamp.
    pub fn tick(&mut self, now: f64) -> HlcStamp {
        let pt = micros(now);
        if pt > self.l {
            self.l = pt;
            self.c = 0;
        } else {
            self.c = self.c.saturating_add(1);
        }
        self.stamp()
    }

    /// Advance for a received message carrying `remote`, at physical
    /// time `now`, and return the receive event's stamp.
    pub fn observe(&mut self, remote: HlcStamp, now: f64) -> HlcStamp {
        let pt = micros(now);
        let l = self.l.max(remote.l).max(pt);
        self.c = if l == self.l && l == remote.l {
            self.c.max(remote.c).saturating_add(1)
        } else if l == self.l {
            self.c.saturating_add(1)
        } else if l == remote.l {
            remote.c.saturating_add(1)
        } else {
            0
        };
        self.l = l;
        self.stamp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_ticks_strictly_increase() {
        let mut h = HybridClock::new();
        let a = h.tick(1.0);
        let b = h.tick(1.0); // same physical instant: logical tiebreak
        let c = h.tick(2.0);
        assert!(a < b && b < c);
        assert_eq!(a.l, 1_000_000);
        assert_eq!(b, HlcStamp { l: 1_000_000, c: 1 });
        assert_eq!(c, HlcStamp { l: 2_000_000, c: 0 });
    }

    #[test]
    fn observe_respects_causality_across_skewed_clocks() {
        // Sender's wall clock runs far ahead of the receiver's.
        let mut tx = HybridClock::new();
        let sent = tx.tick(100.0);
        let mut rx = HybridClock::new();
        let recv = rx.observe(sent, 0.5);
        assert!(sent < recv, "receive must order after send");
        // The receiver's next local event stays after the receive even
        // though its physical clock still reads 0.5 s.
        let next = rx.tick(0.5);
        assert!(recv < next);
    }

    #[test]
    fn observe_merges_equal_l_by_max_c() {
        let mut a = HybridClock { l: 10, c: 4 };
        let got = a.observe(HlcStamp { l: 10, c: 9 }, 0.0);
        assert_eq!(got, HlcStamp { l: 10, c: 10 });
    }

    #[test]
    fn pathological_physical_time_degrades_gracefully() {
        let mut h = HybridClock::new();
        let a = h.tick(f64::NAN);
        let b = h.tick(-5.0);
        assert!(a < b, "clock still advances on garbage physical time");
    }
}
