//! One node process's socket pump: UDP in, UDP out, mock-free time.

use crate::core::{NodeConfig, NodeCore};
use mdr_net::NodeId;
use mdr_sim::telemetry::JsonlSink;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::net::UdpSocket;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Maps node addresses onto loopback UDP ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortMap {
    /// Port of node 0; node `i` listens on `base + i`.
    pub base: u16,
}

impl PortMap {
    /// The socket address of `node`.
    pub fn addr(&self, node: NodeId) -> String {
        format!("127.0.0.1:{}", self.base as u32 + node.0)
    }
}

/// Run one node process until `deadline_s` seconds of wall time elapse
/// (or forever when `deadline_s` is `None`). Returns the number of
/// telemetry lines written.
///
/// `loss` drops each *received* datagram with the given probability
/// using a seeded RNG — deterministic loss decisions per process, which
/// keeps soak failures reproducible from their seed.
pub fn run_node(
    cfg: NodeConfig,
    ports: PortMap,
    trace_path: &str,
    deadline_s: Option<f64>,
    loss: f64,
    loss_seed: u64,
) -> std::io::Result<u64> {
    let socket = UdpSocket::bind(ports.addr(cfg.id))?;
    let mut sink = JsonlSink::create(trace_path, false);
    let mut rng = SmallRng::seed_from_u64(loss_seed);
    // All processes share the Unix epoch, NOT a per-process
    // `Instant::now()` origin: the hybrid logical clocks seed their
    // physical component from `now`, and merging traces by HLC only
    // linearizes causally if every process's clock measures the same
    // timeline. (f64 keeps sub-µs precision at 2^31-second magnitudes —
    // finer than the HLC's microsecond tick.)
    let now_s =
        || SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs_f64()).unwrap_or(0.0);
    let start = now_s();
    let deadline = deadline_s.map(|d| start + d);

    let (mut node, out) = NodeCore::new(cfg, start);
    let write_out = |out: crate::core::NodeOutput,
                     sink: &mut JsonlSink,
                     socket: &UdpSocket|
     -> std::io::Result<()> {
        for r in &out.records {
            sink.write_record(r);
        }
        if !out.records.is_empty() {
            // The soak harness kills with SIGKILL; flushing per batch
            // bounds trace loss to the line in flight.
            sink.flush();
        }
        for (to, bytes) in &out.datagrams {
            // Transient send errors (e.g. the peer's socket does not
            // exist yet, surfacing as ECONNREFUSED on loopback) are the
            // reliability layer's problem, not ours: drop and let the
            // retransmission timers recover.
            let _ = socket.send_to(bytes, ports.addr(*to));
        }
        Ok(())
    };
    write_out(out, &mut sink, &socket)?;

    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let now = now_s();
        if let Some(d) = deadline {
            if now >= d {
                break;
            }
        }
        // Sleep until the core's next deadline (capped so the loop
        // stays responsive to the run deadline).
        let wait = (node.next_deadline() - now).clamp(0.0, 0.05);
        socket.set_read_timeout(Some(Duration::from_secs_f64(wait.max(1e-4))))?;
        match socket.recv_from(&mut buf) {
            Ok((len, _)) => {
                if loss > 0.0 && rng.gen_bool(loss.clamp(0.0, 1.0)) {
                    // Injected receive-side loss.
                } else {
                    let out = node.on_datagram(&buf[..len], now_s());
                    write_out(out, &mut sink, &socket)?;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::ConnectionRefused => {}
            Err(e) => return Err(e),
        }
        let out = node.on_tick(now_s());
        write_out(out, &mut sink, &socket)?;
    }
    let out = node.stop(now_s());
    write_out(out, &mut sink, &socket)?;
    Ok(sink.close().lines)
}
