//! One node process's socket pump: UDP in, UDP out, mock-free time.

use crate::core::{NodeConfig, NodeCore};
use mdr_net::NodeId;
use mdr_sim::chaos::{IngressFate, NetEmu, NetProfile};
use mdr_sim::telemetry::JsonlSink;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::net::UdpSocket;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Maps node addresses onto loopback UDP ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortMap {
    /// Port of node 0; node `i` listens on `base + i`.
    pub base: u16,
}

impl PortMap {
    /// The socket address of `node`.
    pub fn addr(&self, node: NodeId) -> String {
        format!("127.0.0.1:{}", self.base as u32 + node.0)
    }

    /// The node behind a source port, if it is one of ours.
    pub fn node_of(&self, port: u16) -> Option<NodeId> {
        (port >= self.base).then(|| NodeId((port - self.base) as u32))
    }
}

/// Network impairment applied by one node process — the live-shell
/// counterpart of the simulator's `FaultPlan` network knobs. All
/// decisions are drawn from seeded RNGs so a soak failure replays
/// exactly from its seeds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetOptions {
    /// Legacy i.i.d. receive-side datagram loss probability.
    pub loss: f64,
    /// Seed of the i.i.d. loss stream (per process).
    pub loss_seed: u64,
    /// Structured impairment: bursty/asymmetric loss, grey failures,
    /// scripted partitions — shared with the simulator's chaos layer.
    pub profile: Option<NetProfile>,
    /// Epoch instant (Unix seconds) that partition schedules in
    /// `profile` are relative to. Every process of a deployment must be
    /// handed the *same* `t0` so cuts and heals are atomic across the
    /// fleet; defaults to this process's start time.
    pub t0: Option<f64>,
}

impl NetOptions {
    /// Plain i.i.d. loss, the pre-profile behavior.
    pub fn lossy(loss: f64, loss_seed: u64) -> NetOptions {
        NetOptions { loss, loss_seed, profile: None, t0: None }
    }
}

/// Run one node process until `deadline_s` seconds of wall time elapse
/// (or forever when `deadline_s` is `None`). Returns the number of
/// telemetry lines written.
///
/// `net.loss` drops each *received* datagram with the given probability
/// using a seeded RNG; `net.profile` layers the structured adversary on
/// top: egress datagrams into an active partition are dropped at the
/// socket boundary, and ingress datagrams run the same
/// loss/grey/corrupt classifier the simulator applies in
/// `send_control` — deterministic decisions per process, which keeps
/// soak failures reproducible from their seeds.
pub fn run_node(
    cfg: NodeConfig,
    ports: PortMap,
    trace_path: &str,
    deadline_s: Option<f64>,
    net: NetOptions,
) -> std::io::Result<u64> {
    let socket = UdpSocket::bind(ports.addr(cfg.id))?;
    let mut sink = JsonlSink::create(trace_path, false);
    let mut rng = SmallRng::seed_from_u64(net.loss_seed);
    let loss = net.loss;
    // All processes share the Unix epoch, NOT a per-process
    // `Instant::now()` origin: the hybrid logical clocks seed their
    // physical component from `now`, and merging traces by HLC only
    // linearizes causally if every process's clock measures the same
    // timeline. (f64 keeps sub-µs precision at 2^31-second magnitudes —
    // finer than the HLC's microsecond tick.)
    let now_s =
        || SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs_f64()).unwrap_or(0.0);
    let start = now_s();
    let deadline = deadline_s.map(|d| start + d);
    // Partition schedules are expressed in elapsed time since `t0`;
    // every process of a deployment shares it so the cut is atomic.
    let t0 = net.t0.unwrap_or(start);
    let mut emu: Option<NetEmu> = net.profile.map(|p| NetEmu::new(p, cfg.id, cfg.n));

    let (mut node, out) = NodeCore::new(cfg, start);
    let write_out = |out: crate::core::NodeOutput,
                     sink: &mut JsonlSink,
                     socket: &UdpSocket,
                     emu: Option<&NetEmu>|
     -> std::io::Result<()> {
        for r in &out.records {
            sink.write_record(r);
        }
        if !out.records.is_empty() {
            // The soak harness kills with SIGKILL; flushing per batch
            // bounds trace loss to the line in flight.
            sink.flush();
        }
        for (to, bytes) in &out.datagrams {
            // An active partition severs the link at the egress socket
            // boundary — the cut is physical, not a receive decision.
            if let Some(e) = emu {
                if !e.egress_ok(*to, now_s() - t0) {
                    continue;
                }
            }
            // Transient send errors (e.g. the peer's socket does not
            // exist yet, surfacing as ECONNREFUSED on loopback) are the
            // reliability layer's problem, not ours: drop and let the
            // retransmission timers recover.
            let _ = socket.send_to(bytes, ports.addr(*to));
        }
        Ok(())
    };
    write_out(out, &mut sink, &socket, emu.as_ref())?;

    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let now = now_s();
        if let Some(d) = deadline {
            if now >= d {
                break;
            }
        }
        // Sleep until the core's next deadline (capped so the loop
        // stays responsive to the run deadline).
        let wait = (node.next_deadline() - now).clamp(0.0, 0.05);
        socket.set_read_timeout(Some(Duration::from_secs_f64(wait.max(1e-4))))?;
        match socket.recv_from(&mut buf) {
            Ok((len, from_addr)) => {
                let deliver = if loss > 0.0 && rng.gen_bool(loss.clamp(0.0, 1.0)) {
                    false // injected i.i.d. receive-side loss
                } else if let (Some(e), Some(from)) =
                    (emu.as_mut(), ports.node_of(from_addr.port()))
                {
                    // The profile adversary: same classifier the
                    // simulator runs, peeking the frame type byte to
                    // tell LSU data from hello/ack traffic (the grey
                    // mode impairs only data).
                    let is_data = mdr_proto::node_frame_is_data(&buf[..len]).unwrap_or(false);
                    match e.classify(from, is_data, now_s() - t0) {
                        IngressFate::Deliver => true,
                        IngressFate::Drop => false,
                        IngressFate::Corrupt => {
                            if len > 0 {
                                let (i, mask) = e.corrupt_at(from, len);
                                buf[i] ^= mask;
                            }
                            true // the CRC layer judges the damage
                        }
                    }
                } else {
                    true
                };
                if deliver {
                    let out = node.on_datagram(&buf[..len], now_s());
                    write_out(out, &mut sink, &socket, emu.as_ref())?;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::ConnectionRefused => {}
            Err(e) => return Err(e),
        }
        let out = node.on_tick(now_s());
        write_out(out, &mut sink, &socket, emu.as_ref())?;
    }
    let out = node.stop(now_s());
    write_out(out, &mut sink, &socket, emu.as_ref())?;
    Ok(sink.close().lines)
}
