//! The I/O shell: everything that touches sockets, processes, files,
//! or the wall clock.
//!
//! This directory is the *only* part of `mdr-node` allowed to read real
//! time — `lint.toml` carries the one `MDR002` allowlist entry for it —
//! and it contains no protocol logic at all: every decision is made by
//! the deterministic core ([`crate::core::NodeCore`]), which the shell
//! merely pumps.

pub mod launch;
pub mod soak;
pub mod udp;
