//! Topology resolution and multi-process launching.
//!
//! A deployment is described by an [`mdr_net::NetworkSpec`] — either a
//! JSON topology file or one of the built-in names below — and
//! launched as one `mdr-node run` child process per router, each bound
//! to `127.0.0.1:base_port + i` and streaming telemetry to its own
//! per-incarnation JSONL file.

use mdr_net::{topo, NetworkSpec, NodeId, Topology};
use std::path::Path;
use std::process::{Child, Command, Stdio};

/// Build the CAIRN-derived 8-node soak topology: the west-coast mesh of
/// the paper's CAIRN evaluation network (sri, parc, ucb, lbl, nasa,
/// ucla, isi, sdsc with their real adjacencies), plus the isi–sri
/// adjacency obtained by contracting the isi–csco-w–sri path so the
/// subgraph keeps a redundant cycle through the southern sites —
/// without it, a single kill of ucla isolates the isi–sdsc pair and
/// the soak's convergence assertions would be vacuous. (ucsc is left
/// out: its only CAIRN adjacency is sri, an unavoidable leaf.)
pub fn cairn8() -> Topology {
    let full = topo::cairn();
    let keep = ["sri", "parc", "ucb", "lbl", "nasa", "ucla", "isi", "sdsc"];
    let mut b = mdr_net::TopologyBuilder::new();
    let ids: Vec<NodeId> = keep.iter().map(|n| b.add_node(*n)).collect();
    let find = |name: &str| keep.iter().position(|k| *k == name).map(|i| ids[i]);
    // Copy every full-topology link with both ends in the subset
    // (links() holds both directions; keep one per unordered pair).
    for l in full.links() {
        if l.from.0 < l.to.0 {
            let (a, b2) = (full.name(l.from), full.name(l.to));
            if let (Some(x), Some(y)) = (find(a), find(b2)) {
                b = b.bidi(x, y, l.capacity, l.prop_delay);
            }
        }
    }
    // The contracted isi–sri adjacency: two local hops' worth of delay.
    let (isi, sri) = (find("isi").expect("isi kept"), find("sri").expect("sri kept"));
    b = b.bidi(isi, sri, topo::EVAL_CAPACITY, 0.001);
    b.build().expect("cairn8 subgraph is valid")
}

/// Resolve a topology argument: a built-in name (`ring5`, `cairn8`,
/// `cairn`, `net1`) or a path to a [`NetworkSpec`] JSON file.
pub fn topology(arg: &str) -> Result<Topology, String> {
    match arg {
        "ring5" => Ok(topo::ring(5, topo::EVAL_CAPACITY, 0.001)),
        "cairn8" => Ok(cairn8()),
        "cairn" => Ok(topo::cairn()),
        "net1" => Ok(topo::net1()),
        path => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("read topology {path}: {e}"))?;
            let spec = NetworkSpec::from_json(&text).map_err(|e| format!("parse {path}: {e}"))?;
            let (t, _flows) = spec.build().map_err(|e| format!("build {path}: {e}"))?;
            Ok(t)
        }
    }
}

/// Per-node neighbor lists with base link costs (the propagation
/// delay, the static part of the marginal-delay estimate).
pub fn neighbor_table(t: &Topology) -> Vec<Vec<(NodeId, f64)>> {
    let mut table = vec![Vec::new(); t.node_count()];
    for l in t.links() {
        table[l.from.index()].push((l.to, l.prop_delay));
    }
    for row in &mut table {
        row.sort_by_key(|(n, _)| n.0);
    }
    table
}

/// The current Unix time in seconds — the shared `t0` epoch that
/// anchors a deployment's partition schedule. Lives in the shell so
/// the wall-clock read stays inside the sanctioned I/O island.
pub fn unix_now() -> f64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// Network-fault and reliability arguments forwarded verbatim to each
/// `mdr-node run` child — one bundle per deployment, with the
/// per-process loss seed varied by the caller.
#[derive(Debug, Clone, PartialEq)]
pub struct SpawnNet {
    /// Legacy i.i.d. receive-loss probability.
    pub loss: f64,
    /// Per-process seed of the i.i.d. loss stream.
    pub seed: u64,
    /// Structured impairment spec (see `NetProfile::parse`).
    pub profile: Option<String>,
    /// `;`-separated partition schedule (see `PartitionSpec::parse`).
    pub partition: Option<String>,
    /// Seed of the profile's impairment streams — shared by the whole
    /// deployment (directions are decorrelated inside the profile).
    pub profile_seed: u64,
    /// Shared epoch for partition schedules (Unix seconds); must be
    /// identical across the fleet for cuts to be atomic.
    pub t0: Option<f64>,
    /// Adaptive (RFC 6298) retransmission timers; `false` pins the
    /// fixed backoff ladder for A/B soaks.
    pub adaptive: bool,
}

impl Default for SpawnNet {
    fn default() -> Self {
        SpawnNet {
            loss: 0.0,
            seed: 0,
            profile: None,
            partition: None,
            profile_seed: 1,
            t0: None,
            adaptive: true,
        }
    }
}

/// Spawn one `mdr-node run` child.
pub fn spawn_node(
    topo_arg: &str,
    node: NodeId,
    incarnation: u32,
    base_port: u16,
    trace_dir: &Path,
    duration_s: f64,
    net: &SpawnNet,
) -> std::io::Result<Child> {
    let exe = std::env::current_exe()?;
    let trace = trace_dir.join(format!("node{}.inc{}.jsonl", node.0, incarnation));
    let mut args = vec![
        "run".to_string(),
        "--topo".into(),
        topo_arg.to_string(),
        "--node".into(),
        node.0.to_string(),
        "--inc".into(),
        incarnation.to_string(),
        "--base-port".into(),
        base_port.to_string(),
        "--trace".into(),
        trace.display().to_string(),
        "--duration".into(),
        format!("{duration_s}"),
        "--loss".into(),
        format!("{}", net.loss),
        "--seed".into(),
        net.seed.to_string(),
        "--adaptive".into(),
        net.adaptive.to_string(),
    ];
    if let Some(p) = &net.profile {
        args.extend([
            "--profile".into(),
            p.clone(),
            "--profile-seed".into(),
            net.profile_seed.to_string(),
        ]);
    }
    if let Some(p) = &net.partition {
        args.extend(["--partition".into(), p.clone()]);
    }
    if let Some(t0) = net.t0 {
        args.extend(["--t0".into(), format!("{t0}")]);
    }
    Command::new(exe)
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cairn8_is_a_redundant_connected_subgraph() {
        let t = cairn8();
        assert_eq!(t.node_count(), 8);
        assert!(t.is_connected());
        // The contracted isi-sri edge exists.
        let isi = t.node_by_name("isi").unwrap();
        let sri = t.node_by_name("sri").unwrap();
        assert!(t.link_between(isi, sri).is_some());
        // Redundancy: every node has degree >= 2, so no single kill
        // partitions the survivors... except leaves of the real CAIRN
        // subgraph, which must not exist here.
        for n in t.nodes() {
            assert!(t.degree(n) >= 2, "node {} has degree {}", t.name(n), t.degree(n));
        }
    }

    #[test]
    fn named_topologies_resolve() {
        for (name, n) in [("ring5", 5), ("cairn8", 8), ("cairn", 26), ("net1", 10)] {
            let t = topology(name).unwrap();
            assert_eq!(t.node_count(), n, "{name}");
        }
        assert!(topology("/no/such/file.json").is_err());
    }

    #[test]
    fn neighbor_table_mirrors_links() {
        let t = cairn8();
        let table = neighbor_table(&t);
        let isi = t.node_by_name("isi").unwrap();
        let sri = t.node_by_name("sri").unwrap();
        assert!(table[isi.index()].iter().any(|&(p, _)| p == sri));
        assert!(table[sri.index()].iter().any(|&(p, _)| p == isi));
        // Symmetric degree counts.
        let total: usize = table.iter().map(Vec::len).sum();
        assert_eq!(total, t.link_count());
    }
}
