//! The soak harness: N live processes under random kill/restart and
//! receive-side UDP loss, audited from their merged telemetry traces.
//!
//! The schedule is drawn from a seeded RNG, so a failing soak replays
//! exactly from its seed. After the run the harness merges every
//! per-incarnation trace by hybrid logical clock and replays it through
//! [`crate::trace::audit_trace`] — the LFI safety checks run against
//! the *real* multi-process control plane. The report lands in
//! `soak.json` next to the traces.

use crate::shell::launch::{spawn_node, topology};
use crate::trace::{audit_trace, merge_lines, TraceAudit};
use mdr_net::NodeId;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Serialize, Value};
use std::path::PathBuf;
use std::process::Child;
use std::time::{Duration, Instant};

/// Soak-run parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakConfig {
    /// Topology name or spec path (see [`crate::shell::launch::topology`]).
    pub topo: String,
    /// Total run length (seconds), including the settle window.
    pub duration_s: f64,
    /// Kill/restart cycles to inject.
    pub kills: u32,
    /// Receive-side datagram loss probability per process.
    pub loss: f64,
    /// Master seed for the kill schedule and per-process loss streams.
    pub seed: u64,
    /// UDP port of node 0 (node `i` uses `base_port + i`).
    pub base_port: u16,
    /// Directory for traces and the report.
    pub out_dir: PathBuf,
}

impl SoakConfig {
    /// The CI smoke preset: 5 nodes, ~20 s, 2 kills, mild loss.
    pub fn smoke(out_dir: PathBuf) -> Self {
        SoakConfig {
            topo: "ring5".into(),
            duration_s: 20.0,
            kills: 2,
            loss: 0.02,
            seed: 7,
            base_port: 47000,
            out_dir,
        }
    }

    /// The full acceptance soak: the CAIRN-derived 8-node subgraph,
    /// 10 kill/restart cycles, 5% receive loss.
    pub fn full(out_dir: PathBuf) -> Self {
        SoakConfig {
            topo: "cairn8".into(),
            duration_s: 45.0,
            kills: 10,
            loss: 0.05,
            seed: 7,
            base_port: 47100,
            out_dir,
        }
    }
}

/// What a soak run measured; serialized to `soak.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// Routers.
    pub n: usize,
    /// Kill/restart cycles actually injected.
    pub kills: u32,
    /// Configured receive-loss probability.
    pub loss: f64,
    /// Schedule seed.
    pub seed: u64,
    /// Wall-clock run length (s).
    pub duration_s: f64,
    /// Malformed trace lines skipped by the merge (tails cut by kills).
    pub malformed_lines: u64,
    /// The merged-trace audit.
    pub audit: TraceAudit,
    /// Every child exited cleanly (the final generation; killed
    /// generations are expected casualties).
    pub clean_shutdown: bool,
}

impl SoakReport {
    /// The pass criterion: zero LFI violations, every final life
    /// converged, clean shutdown.
    pub fn passed(&self) -> bool {
        self.audit.monitor.violations == 0
            && self.audit.unconverged.is_empty()
            && self.clean_shutdown
    }
}

impl Serialize for SoakReport {
    fn serialize_value(&self) -> Value {
        let recoveries = self
            .audit
            .recoveries
            .iter()
            .map(|r| {
                Value::Map(vec![
                    ("node".into(), Value::U64(r.node.0 as u64)),
                    ("inc".into(), Value::U64(r.incarnation as u64)),
                    ("recovery_s".into(), Value::F64(r.recovery_s)),
                ])
            })
            .collect();
        Value::Map(vec![
            ("n".into(), Value::U64(self.n as u64)),
            ("kills".into(), Value::U64(self.kills as u64)),
            ("loss".into(), Value::F64(self.loss)),
            ("seed".into(), Value::U64(self.seed)),
            ("duration_s".into(), Value::F64(self.duration_s)),
            ("records".into(), Value::U64(self.audit.records)),
            ("malformed_lines".into(), Value::U64(self.malformed_lines)),
            ("lfi_checks".into(), Value::U64(self.audit.monitor.checks)),
            ("lfi_violations".into(), Value::U64(self.audit.monitor.violations)),
            (
                "first_violation".into(),
                match &self.audit.monitor.first_violation {
                    Some(s) => Value::Str(s.clone()),
                    None => Value::Null,
                },
            ),
            ("recoveries".into(), Value::Seq(recoveries)),
            (
                "max_recovery_s".into(),
                match self.audit.max_recovery_s() {
                    Some(x) => Value::F64(x),
                    None => Value::Null,
                },
            ),
            ("interrupted_lives".into(), Value::U64(self.audit.interrupted.len() as u64)),
            ("unconverged_final".into(), Value::U64(self.audit.unconverged.len() as u64)),
            ("clean_shutdown".into(), Value::Bool(self.clean_shutdown)),
            ("passed".into(), Value::Bool(self.passed())),
        ])
    }
}

/// Run the soak: spawn one process per router, inject the kill/restart
/// schedule, wait for clean exits, merge and audit the traces, and
/// write `soak.json` into the output directory.
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakReport, String> {
    let topo = topology(&cfg.topo)?;
    let n = topo.node_count();
    if cfg.duration_s <= 2.0 {
        return Err("soak duration must exceed the 2 s settle window".into());
    }
    std::fs::create_dir_all(&cfg.out_dir).map_err(|e| format!("create out dir: {e}"))?;

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    // Kill instants in the first ~70% of the run, sorted, leaving a
    // settle window for the final generation to reconverge.
    let mut kill_times: Vec<f64> =
        (0..cfg.kills).map(|_| rng.gen_range(0.15..0.7) * cfg.duration_s).collect();
    kill_times.sort_by(f64::total_cmp);
    let victims: Vec<u32> = (0..cfg.kills).map(|_| rng.gen_range(0..n as u32)).collect();

    let start = Instant::now();
    let elapsed = |start: Instant| start.elapsed().as_secs_f64();
    let mut incarnation: Vec<u32> = vec![1; n];
    let mut children: Vec<Child> = Vec::with_capacity(n);
    let mut trace_files: Vec<PathBuf> = Vec::new();
    let spawn = |node: NodeId,
                 inc: u32,
                 remaining: f64,
                 trace_files: &mut Vec<PathBuf>|
     -> Result<Child, String> {
        trace_files.push(cfg.out_dir.join(format!("node{}.inc{}.jsonl", node.0, inc)));
        spawn_node(
            &cfg.topo,
            node,
            inc,
            cfg.base_port,
            &cfg.out_dir,
            remaining,
            cfg.loss,
            cfg.seed ^ ((node.0 as u64) << 32) ^ (inc as u64),
        )
        .map_err(|e| format!("spawn node {}: {e}", node.0))
    };

    for i in 0..n {
        let child = spawn(NodeId(i as u32), 1, cfg.duration_s, &mut trace_files)?;
        children.push(child);
    }

    let mut injected = 0u32;
    for (t, victim) in kill_times.iter().zip(&victims) {
        let wait = t - elapsed(start);
        if wait > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(wait));
        }
        let v = *victim as usize;
        // SIGKILL: no cleanup, no flush — the hard-crash case.
        let _ = children[v].kill();
        let _ = children[v].wait();
        // A brief down time so the death is observable, then restart
        // with the incremented incarnation.
        std::thread::sleep(Duration::from_millis(200));
        incarnation[v] += 1;
        let remaining = (cfg.duration_s - elapsed(start)).max(3.0);
        children[v] = spawn(NodeId(*victim), incarnation[v], remaining, &mut trace_files)?;
        injected += 1;
    }

    // Children exit on their own deadlines; a generous grace period
    // guards against a hung child wedging CI forever.
    let mut clean = true;
    let grace = cfg.duration_s + 30.0;
    for (i, child) in children.iter_mut().enumerate() {
        loop {
            match child.try_wait() {
                Ok(Some(status)) => {
                    if !status.success() {
                        eprintln!("soak: node {i} exited with {status}");
                        clean = false;
                    }
                    break;
                }
                Ok(None) if elapsed(start) > grace => {
                    eprintln!("soak: node {i} hung; killing");
                    let _ = child.kill();
                    let _ = child.wait();
                    clean = false;
                    break;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(e) => {
                    eprintln!("soak: wait node {i}: {e}");
                    clean = false;
                    break;
                }
            }
        }
    }

    let contents: Vec<String> =
        trace_files.iter().map(|p| std::fs::read_to_string(p).unwrap_or_default()).collect();
    let (records, malformed) = merge_lines(&contents);
    let audit = audit_trace(n, &records);

    let report = SoakReport {
        n,
        kills: injected,
        loss: cfg.loss,
        seed: cfg.seed,
        duration_s: elapsed(start),
        malformed_lines: malformed,
        audit,
        clean_shutdown: clean,
    };
    let json = serde_json::to_string_pretty(&report).map_err(|e| format!("serialize: {e}"))?;
    let path = cfg.out_dir.join("soak.json");
    std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(report)
}
