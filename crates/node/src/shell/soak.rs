//! The soak harness: N live processes under random kill/restart and
//! receive-side UDP loss, audited from their merged telemetry traces.
//!
//! The schedule is drawn from a seeded RNG, so a failing soak replays
//! exactly from its seed. After the run the harness merges every
//! per-incarnation trace by hybrid logical clock and replays it through
//! [`crate::trace::audit_trace`] — the LFI safety checks run against
//! the *real* multi-process control plane. The report lands in
//! `soak.json` next to the traces.

use crate::record::{NodeRecord, RecordBody};
use crate::shell::launch::{spawn_node, topology, SpawnNet};
use crate::trace::{audit_trace, merge_lines, TraceAudit};
use mdr_net::NodeId;
use mdr_sim::chaos::{NetProfile, PartitionSpec};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Serialize, Value};
use std::path::PathBuf;
use std::process::Child;
use std::time::{Duration, Instant};

/// Soak-run parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakConfig {
    /// Topology name or spec path (see [`crate::shell::launch::topology`]).
    pub topo: String,
    /// Total run length (seconds), including the settle window.
    pub duration_s: f64,
    /// Kill/restart cycles to inject.
    pub kills: u32,
    /// Receive-side datagram loss probability per process.
    pub loss: f64,
    /// Master seed for the kill schedule and per-process loss streams.
    pub seed: u64,
    /// UDP port of node 0 (node `i` uses `base_port + i`).
    pub base_port: u16,
    /// Directory for traces and the report.
    pub out_dir: PathBuf,
    /// Structured impairment spec (see [`NetProfile::parse`]), layered
    /// on top of the i.i.d. `loss`.
    pub profile: Option<String>,
    /// `;`-separated scripted partition schedule, relative to soak
    /// start (see [`PartitionSpec::parse`]).
    pub partition: Option<String>,
    /// Adaptive (RFC 6298) retransmission timers; `false` pins the
    /// fixed backoff ladder for A/B comparisons.
    pub adaptive: bool,
}

impl SoakConfig {
    fn base(
        topo: &str,
        duration_s: f64,
        kills: u32,
        loss: f64,
        base_port: u16,
        out_dir: PathBuf,
    ) -> Self {
        SoakConfig {
            topo: topo.into(),
            duration_s,
            kills,
            loss,
            seed: 7,
            base_port,
            out_dir,
            profile: None,
            partition: None,
            adaptive: true,
        }
    }

    /// The CI smoke preset: 5 nodes, ~20 s, 2 kills, mild loss.
    pub fn smoke(out_dir: PathBuf) -> Self {
        Self::base("ring5", 20.0, 2, 0.02, 47000, out_dir)
    }

    /// The full acceptance soak: the CAIRN-derived 8-node subgraph,
    /// 10 kill/restart cycles, 5% receive loss.
    pub fn full(out_dir: PathBuf) -> Self {
        Self::base("cairn8", 45.0, 10, 0.05, 47100, out_dir)
    }

    /// Bursty-adversary preset: Gilbert–Elliott loss (60% inside
    /// bursts) plus a grey-failing data path, one kill on top.
    pub fn bursty(out_dir: PathBuf) -> Self {
        let mut cfg = Self::base("ring5", 25.0, 1, 0.0, 47200, out_dir);
        cfg.profile = Some("ge:0.05,0.4,0.01,0.6;grey:0.1,0.05".into());
        cfg
    }

    /// Partition/heal preset: nodes {0,1} cut off mid-run, healed with
    /// a settle window; recovery after the heal is measured and gated.
    pub fn partition(out_dir: PathBuf) -> Self {
        let mut cfg = Self::base("ring5", 25.0, 0, 0.01, 47300, out_dir);
        cfg.partition = Some("8:13:0|1".into());
        cfg
    }
}

/// What a soak run measured; serialized to `soak.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// Routers.
    pub n: usize,
    /// Kill/restart cycles actually injected.
    pub kills: u32,
    /// Configured receive-loss probability.
    pub loss: f64,
    /// Schedule seed.
    pub seed: u64,
    /// Wall-clock run length (s).
    pub duration_s: f64,
    /// Malformed trace lines skipped by the merge (tails cut by kills).
    pub malformed_lines: u64,
    /// The merged-trace audit.
    pub audit: TraceAudit,
    /// Every child exited cleanly (the final generation; killed
    /// generations are expected casualties).
    pub clean_shutdown: bool,
    /// The impairment profile in force, if any.
    pub profile: Option<String>,
    /// The partition schedule in force, if any.
    pub partition: Option<String>,
    /// Whether the adaptive RTO was on (vs. the fixed backoff ladder).
    pub adaptive: bool,
    /// Number of partition heals scheduled inside the run.
    pub heals: u32,
    /// Nodes that re-converged after the *last* heal.
    pub heal_converged: u32,
    /// Worst-case span from the last heal to a node's re-convergence
    /// (s) — the partition-recovery figure of merit.
    pub heal_recovery_s: Option<f64>,
}

impl SoakReport {
    /// The pass criterion: zero LFI violations, every final life
    /// converged, clean shutdown — and, under a partition schedule,
    /// every router re-converging after the last heal.
    pub fn passed(&self) -> bool {
        self.audit.monitor.violations == 0
            && self.audit.unconverged.is_empty()
            && self.clean_shutdown
            && (self.heals == 0 || self.heal_converged as usize == self.n)
    }
}

/// Post-heal recovery from the merged trace: for every node, the span
/// from the heal instant (Unix seconds) to its first `converged` record
/// after it. Returns the number of nodes that re-converged and the
/// worst span among them. The audit's `start → converged` recoveries
/// only time process (re)starts; a partition perturbs routing *without*
/// restarting anyone, so the heal clock has to be read separately.
fn heal_recovery(n: usize, records: &[NodeRecord], heal_wall: f64) -> (u32, Option<f64>) {
    let heal_l = (heal_wall * 1e6) as u64;
    let mut seen = vec![false; n];
    let mut worst: Option<f64> = None;
    let mut converged = 0u32;
    for rec in records {
        if rec.hlc.l < heal_l || !matches!(rec.body, RecordBody::Converged) {
            continue;
        }
        let i = rec.node.index();
        if i < n && !seen[i] {
            seen[i] = true;
            converged += 1;
            let s = rec.hlc.l.saturating_sub(heal_l) as f64 / 1e6;
            worst = Some(worst.map_or(s, |w: f64| w.max(s)));
        }
    }
    (converged, worst)
}

impl Serialize for SoakReport {
    fn serialize_value(&self) -> Value {
        let recoveries = self
            .audit
            .recoveries
            .iter()
            .map(|r| {
                Value::Map(vec![
                    ("node".into(), Value::U64(r.node.0 as u64)),
                    ("inc".into(), Value::U64(r.incarnation as u64)),
                    ("recovery_s".into(), Value::F64(r.recovery_s)),
                ])
            })
            .collect();
        Value::Map(vec![
            ("n".into(), Value::U64(self.n as u64)),
            ("kills".into(), Value::U64(self.kills as u64)),
            ("loss".into(), Value::F64(self.loss)),
            ("seed".into(), Value::U64(self.seed)),
            ("duration_s".into(), Value::F64(self.duration_s)),
            ("records".into(), Value::U64(self.audit.records)),
            ("malformed_lines".into(), Value::U64(self.malformed_lines)),
            ("lfi_checks".into(), Value::U64(self.audit.monitor.checks)),
            ("lfi_violations".into(), Value::U64(self.audit.monitor.violations)),
            (
                "first_violation".into(),
                match &self.audit.monitor.first_violation {
                    Some(s) => Value::Str(s.clone()),
                    None => Value::Null,
                },
            ),
            ("recoveries".into(), Value::Seq(recoveries)),
            (
                "max_recovery_s".into(),
                match self.audit.max_recovery_s() {
                    Some(x) => Value::F64(x),
                    None => Value::Null,
                },
            ),
            ("interrupted_lives".into(), Value::U64(self.audit.interrupted.len() as u64)),
            ("unconverged_final".into(), Value::U64(self.audit.unconverged.len() as u64)),
            ("clean_shutdown".into(), Value::Bool(self.clean_shutdown)),
            (
                "profile".into(),
                match &self.profile {
                    Some(s) => Value::Str(s.clone()),
                    None => Value::Null,
                },
            ),
            (
                "partition".into(),
                match &self.partition {
                    Some(s) => Value::Str(s.clone()),
                    None => Value::Null,
                },
            ),
            ("adaptive".into(), Value::Bool(self.adaptive)),
            ("heals".into(), Value::U64(self.heals as u64)),
            ("heal_converged".into(), Value::U64(self.heal_converged as u64)),
            (
                "heal_recovery_s".into(),
                match self.heal_recovery_s {
                    Some(x) => Value::F64(x),
                    None => Value::Null,
                },
            ),
            ("passed".into(), Value::Bool(self.passed())),
        ])
    }
}

/// Run the soak: spawn one process per router, inject the kill/restart
/// schedule, wait for clean exits, merge and audit the traces, and
/// write `soak.json` into the output directory.
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakReport, String> {
    let topo = topology(&cfg.topo)?;
    let n = topo.node_count();
    if cfg.duration_s <= 2.0 {
        return Err("soak duration must exceed the 2 s settle window".into());
    }
    // Validate the adversary spec up front (the children would only
    // fail one by one) and extract the partition schedule so the heal
    // clock below knows when to start.
    if let Some(p) = &cfg.profile {
        NetProfile::parse(p, cfg.seed).map_err(|e| format!("profile: {e}"))?;
    }
    let partitions: Vec<PartitionSpec> = match &cfg.partition {
        None => Vec::new(),
        Some(spec) => spec
            .split(';')
            .filter(|c| !c.trim().is_empty())
            .map(PartitionSpec::parse)
            .collect::<Result<_, _>>()
            .map_err(|e| format!("partition: {e}"))?,
    };
    for p in &partitions {
        if p.heal_at >= cfg.duration_s - 2.0 {
            return Err(format!(
                "partition heals at {:.1}s but the soak ends at {:.1}s — no settle window",
                p.heal_at, cfg.duration_s
            ));
        }
    }
    std::fs::create_dir_all(&cfg.out_dir).map_err(|e| format!("create out dir: {e}"))?;

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    // Kill instants in the first ~70% of the run, sorted, leaving a
    // settle window for the final generation to reconverge.
    let mut kill_times: Vec<f64> =
        (0..cfg.kills).map(|_| rng.gen_range(0.15..0.7) * cfg.duration_s).collect();
    kill_times.sort_by(f64::total_cmp);
    let victims: Vec<u32> = (0..cfg.kills).map(|_| rng.gen_range(0..n as u32)).collect();

    let start = Instant::now();
    // The shared schedule epoch: every child — including respawns —
    // gets the same `t0`, so partition cuts and heals stay atomic
    // across the fleet and across restarts.
    let t0 = super::launch::unix_now();
    let elapsed = |start: Instant| start.elapsed().as_secs_f64();
    let mut incarnation: Vec<u32> = vec![1; n];
    let mut children: Vec<Child> = Vec::with_capacity(n);
    let mut trace_files: Vec<PathBuf> = Vec::new();
    let spawn = |node: NodeId,
                 inc: u32,
                 remaining: f64,
                 trace_files: &mut Vec<PathBuf>|
     -> Result<Child, String> {
        trace_files.push(cfg.out_dir.join(format!("node{}.inc{}.jsonl", node.0, inc)));
        let net = SpawnNet {
            loss: cfg.loss,
            seed: cfg.seed ^ ((node.0 as u64) << 32) ^ (inc as u64),
            profile: cfg.profile.clone(),
            partition: cfg.partition.clone(),
            profile_seed: cfg.seed,
            t0: Some(t0),
            adaptive: cfg.adaptive,
        };
        spawn_node(&cfg.topo, node, inc, cfg.base_port, &cfg.out_dir, remaining, &net)
            .map_err(|e| format!("spawn node {}: {e}", node.0))
    };

    for i in 0..n {
        let child = spawn(NodeId(i as u32), 1, cfg.duration_s, &mut trace_files)?;
        children.push(child);
    }

    let mut injected = 0u32;
    for (t, victim) in kill_times.iter().zip(&victims) {
        let wait = t - elapsed(start);
        if wait > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(wait));
        }
        let v = *victim as usize;
        // SIGKILL: no cleanup, no flush — the hard-crash case.
        let _ = children[v].kill();
        let _ = children[v].wait();
        // A brief down time so the death is observable, then restart
        // with the incremented incarnation.
        std::thread::sleep(Duration::from_millis(200));
        incarnation[v] += 1;
        let remaining = (cfg.duration_s - elapsed(start)).max(3.0);
        children[v] = spawn(NodeId(*victim), incarnation[v], remaining, &mut trace_files)?;
        injected += 1;
    }

    // Children exit on their own deadlines; a generous grace period
    // guards against a hung child wedging CI forever.
    let mut clean = true;
    let grace = cfg.duration_s + 30.0;
    for (i, child) in children.iter_mut().enumerate() {
        loop {
            match child.try_wait() {
                Ok(Some(status)) => {
                    if !status.success() {
                        eprintln!("soak: node {i} exited with {status}");
                        clean = false;
                    }
                    break;
                }
                Ok(None) if elapsed(start) > grace => {
                    eprintln!("soak: node {i} hung; killing");
                    let _ = child.kill();
                    let _ = child.wait();
                    clean = false;
                    break;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(e) => {
                    eprintln!("soak: wait node {i}: {e}");
                    clean = false;
                    break;
                }
            }
        }
    }

    let contents: Vec<String> =
        trace_files.iter().map(|p| std::fs::read_to_string(p).unwrap_or_default()).collect();
    let (records, malformed) = merge_lines(&contents);
    let audit = audit_trace(n, &records);
    // Time recovery from the *last* heal: by then every scripted cut is
    // over, so the reconvergence it measures is the true steady-state
    // repair (earlier heals may overlap later cuts).
    let last_heal = partitions.iter().map(|p| p.heal_at).fold(f64::NEG_INFINITY, f64::max);
    let (heal_converged, heal_recovery_s) =
        if partitions.is_empty() { (0, None) } else { heal_recovery(n, &records, t0 + last_heal) };

    let report = SoakReport {
        n,
        kills: injected,
        loss: cfg.loss,
        seed: cfg.seed,
        duration_s: elapsed(start),
        malformed_lines: malformed,
        audit,
        clean_shutdown: clean,
        profile: cfg.profile.clone(),
        partition: cfg.partition.clone(),
        adaptive: cfg.adaptive,
        heals: partitions.len() as u32,
        heal_converged,
        heal_recovery_s,
    };
    let json = serde_json::to_string_pretty(&report).map_err(|e| format!("serialize: {e}"))?;
    let path = cfg.out_dir.join("soak.json");
    std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdr_proto::HlcStamp;

    fn conv(l: u64, node: u32) -> NodeRecord {
        NodeRecord {
            hlc: HlcStamp { l, c: 0 },
            node: NodeId(node),
            incarnation: 1,
            body: RecordBody::Converged,
        }
    }

    #[test]
    fn heal_recovery_times_first_reconvergence_per_node() {
        let records = vec![
            conv(1_000_000, 0), // pre-heal: ignored
            conv(3_000_000, 0), // node 0 reconverges 1 s after the heal
            conv(3_500_000, 1), // node 1: 1.5 s
            conv(4_000_000, 0), // later churn is not double counted
        ];
        let (n_conv, worst) = heal_recovery(3, &records, 2.0);
        assert_eq!(n_conv, 2);
        assert!((worst.unwrap() - 1.5).abs() < 1e-9);
        assert_eq!(heal_recovery(3, &records, 10.0), (0, None));
    }

    #[test]
    fn adversarial_presets_carry_parseable_specs() {
        let b = SoakConfig::bursty(PathBuf::from("x"));
        NetProfile::parse(b.profile.as_deref().unwrap(), b.seed).unwrap();
        let p = SoakConfig::partition(PathBuf::from("x"));
        let spec = PartitionSpec::parse(p.partition.as_deref().unwrap()).unwrap();
        // The schedule heals inside the run with a settle window.
        assert!(spec.heal_at < p.duration_s - 2.0);
        // A partition-scheduled report without full reconvergence fails.
        assert!(spec.at < spec.heal_at);
    }
}
