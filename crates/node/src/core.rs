//! The node event-loop body: deterministic, sans-I/O, no panic paths.
//!
//! [`NodeCore`] owns one [`RouterDriver`] (the pure MPDA transition
//! relation), one IH/AH [`Allocator`], and one [`PeerChannel`] per
//! configured neighbor. The I/O shell is a thin pump: it feeds
//! datagrams and timer ticks in, carries datagrams and telemetry
//! records out, and sleeps until [`NodeCore::next_deadline`]. Because
//! every method takes an explicit `now`, the entire control plane —
//! reliability layer included — runs identically under a mock clock in
//! unit tests and under wall clock in deployment.
//!
//! Failure handling is uniform by construction: a neighbor declared
//! dead (dead interval or retry exhaustion) and a simulated link cut
//! both funnel into [`RouterDriver::neighbor_down`], i.e. the same
//! `Delete`-LSU withdrawal path, so the safety argument (Theorem 3)
//! covers process crashes for free. A peer restart (higher incarnation)
//! is a down/up pair — the `LinkUp` re-floods full state at the new
//! incarnation, which is the re-sync.
//!
//! **Ack substitution.** MPDA's ACTIVE phase may raise `FD` only once
//! "every neighbor has acknowledged the reported values" (Fig. 4 step
//! 3) — but the protocol-level ack is an unlabeled flag, and under
//! retransmission delays and adjacency churn an ack from an *earlier*
//! exchange can reach the router during a *later* phase, ending it
//! before some neighbor processed the raised distances (an FD-ordering
//! breach the merged-trace audit catches). The reliable layer already
//! numbers every segment, so the node substitutes transport acks for
//! protocol acks: incoming LSUs are delivered with their ack flag
//! cleared, outgoing pure-ack LSUs are suppressed, and a synthetic
//! [`LsuMessage::ack_only`] is fed to the router exactly when a
//! neighbor's channel reports [`PeerChannel::flushed`] — the peer has
//! provably processed *everything* sent, which is the paper's premise
//! made literal.
//!
//! **Graceful degradation:** this module is in `mdr-lint`'s
//! `no_panic_paths` set. Corrupt datagrams count and drop; unknown
//! senders drop; stale incarnations drop; there is no code path that
//! panics on network input.

use crate::hlc::HybridClock;
use crate::record::{NodeRecord, PeerSync, RecordBody, SnapDest};
use crate::reliable::{ChannelEvent, PeerChannel, ReliableConfig};
use mdr_flow::{Allocator, Mode, SuccessorCost};
use mdr_net::{NodeId, INFINITE_COST};
use mdr_proto::{frame_node, unframe_node, LsuMessage, NodeBody, NodeMsg};
use mdr_routing::{RouterDriver, RouterOutput, RouterSnapshot};
use mdr_sim::telemetry::Ewma;

/// Static configuration of one node process.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    /// This node's address.
    pub id: NodeId,
    /// Network size (router addresses are `0..n`).
    pub n: usize,
    /// This process's incarnation (≥ 1; restarts increment it).
    pub incarnation: u32,
    /// Configured neighbors with their base link costs (seconds).
    pub neighbors: Vec<(NodeId, f64)>,
    /// Reliability-layer knobs, shared by every adjacency.
    pub reliable: ReliableConfig,
    /// EWMA smoothing for ack-derived RTT samples.
    pub rtt_alpha: f64,
    /// Relative change in effective link cost required before
    /// re-advertising it to the routing layer (damps LSU churn from
    /// RTT jitter).
    pub cost_deadband: f64,
}

impl NodeConfig {
    /// A config with default reliability and estimator knobs.
    pub fn new(id: NodeId, n: usize, incarnation: u32, neighbors: Vec<(NodeId, f64)>) -> Self {
        NodeConfig {
            id,
            n,
            incarnation: incarnation.max(1),
            neighbors,
            reliable: ReliableConfig::default(),
            rtt_alpha: 0.125,
            cost_deadband: 0.25,
        }
    }
}

/// When may a restart quarantine lift ahead of its timeout fallback?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleasePolicy {
    /// Sound: every configured neighbor has delivered at least one
    /// in-order segment on its fresh channel — proof it processed our
    /// new incarnation and purged any routes through the previous
    /// life first (see [`PeerChannel::delivered`]).
    AllNeighborsProven,
    /// Deliberately unsound, checker-validation only: lift as soon as
    /// *any* neighbor proves itself. The remaining neighbors may still
    /// route through our dead incarnation — exactly the transient
    /// forwarding loop the quarantine exists to prevent, and the
    /// counterexample the `mdr-verify` transport checker must produce
    /// against this policy.
    FirstProof,
}

/// The quarantine-release predicate, factored out of [`NodeCore`] so
/// the live node, its unit tests, and the `mdr-verify` transport
/// checker all drive one decision procedure. `proven` yields one flag
/// per configured neighbor (has its channel delivered in-order data
/// this life?); `timed_out` is the dead-interval-since-boot fallback,
/// by which every neighbor has either re-synced or declared the old
/// life dead — both purge.
pub fn quarantine_release_due(
    proven: impl Iterator<Item = bool>,
    timed_out: bool,
    policy: ReleasePolicy,
) -> bool {
    let mut any = false;
    let mut all = true;
    for p in proven {
        any |= p;
        all &= p;
    }
    let sufficient = match policy {
        ReleasePolicy::AllNeighborsProven => all,
        ReleasePolicy::FirstProof => any,
    };
    sufficient || timed_out
}

/// What one entry point produced: datagrams to transmit (framed, ready
/// for the socket) and telemetry records to append to the trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeOutput {
    /// `(neighbor, framed bytes)` pairs, in emission order.
    pub datagrams: Vec<(NodeId, Vec<u8>)>,
    /// Telemetry records, in emission order.
    pub records: Vec<NodeRecord>,
}

#[derive(Debug, Clone)]
struct Neighbor {
    peer: NodeId,
    base_cost: f64,
    chan: PeerChannel,
    rtt: Ewma,
    /// Cost currently advertised to the router (`None` while down).
    advertised: Option<f64>,
    /// Adjacency came up while quarantined; the router has not been
    /// told yet.
    up_pending: bool,
    /// In-order LSUs delivered while quarantined, awaiting the router.
    held: Vec<LsuMessage>,
    /// An entries-bearing LSU is on the wire and not yet known to be
    /// processed by the peer; the router's ACTIVE phase toward this
    /// neighbor is still open (see the ack substitution note in the
    /// module docs).
    awaiting_ack: bool,
}

impl Neighbor {
    fn effective_cost(&self) -> f64 {
        // Base propagation cost plus the smoothed one-way queueing
        // estimate from ack RTTs — the deployment's stand-in for the
        // simulator's marginal-delay estimator.
        match self.rtt.value() {
            Some(r) => self.base_cost + r / 2.0,
            None => self.base_cost,
        }
    }
}

/// One router process's deterministic core.
#[derive(Debug, Clone)]
pub struct NodeCore {
    cfg: NodeConfig,
    clock: HybridClock,
    driver: RouterDriver,
    alloc: Allocator,
    neighbors: Vec<Neighbor>,
    corrupt: u64,
    was_converged: bool,
    snapshot_pending: bool,
    /// Feasible distances as of the last snapshot record, indexed by
    /// destination. A phase ending raises FD without necessarily
    /// changing any successor set (`step_mtu_and_fd`'s last-ack
    /// branch emits no route change), and the merged-trace audit
    /// compares FDs *across* nodes — so an unsnapshotted raise makes
    /// a peer's fresh FD look infeasible against this node's stale
    /// one. [`NodeCore::finish`] snapshots on any FD movement.
    last_fds: Vec<f64>,
    boot: f64,
    /// Restart quarantine (see [`NodeCore::quarantined`]).
    quarantined: bool,
}

impl NodeCore {
    /// Boot the node at `now`. The returned output carries the `start`
    /// record; the opening hellos come from the first
    /// [`NodeCore::on_tick`].
    pub fn new(cfg: NodeConfig, now: f64) -> (Self, NodeOutput) {
        let neighbors = cfg
            .neighbors
            .iter()
            .map(|&(peer, base_cost)| Neighbor {
                peer,
                base_cost,
                chan: PeerChannel::new(cfg.reliable, cfg.incarnation, now),
                rtt: Ewma::new(cfg.rtt_alpha.clamp(1e-6, 1.0)),
                advertised: None,
                up_pending: false,
                held: Vec::new(),
                awaiting_ack: false,
            })
            .collect();
        let driver = RouterDriver::new(cfg.id, cfg.n);
        let last_fds =
            (0..cfg.n as u32).map(|j| driver.router().feasible_distance(NodeId(j))).collect();
        let mut node = NodeCore {
            driver,
            alloc: Allocator::new(cfg.n, Mode::Multipath),
            clock: HybridClock::new(),
            neighbors,
            corrupt: 0,
            was_converged: false,
            snapshot_pending: false,
            last_fds,
            boot: now,
            // A first boot (incarnation 1) is the paper's initialization
            // — provably loop-free, no quarantine needed. A restart is
            // not: see `quarantined`.
            quarantined: cfg.incarnation > 1,
            cfg,
        };
        let mut out = NodeOutput::default();
        let start = RecordBody::Start {
            n: node.cfg.n as u64,
            neighbors: node.cfg.neighbors.iter().map(|&(p, _)| p).collect(),
        };
        node.record(start, now, &mut out);
        (node, out)
    }

    /// This node's address.
    pub fn id(&self) -> NodeId {
        self.cfg.id
    }

    /// This process's incarnation.
    pub fn incarnation(&self) -> u32 {
        self.cfg.incarnation
    }

    /// Undecodable datagrams dropped so far.
    pub fn corrupt_datagrams(&self) -> u64 {
        self.corrupt
    }

    /// The hosted router driver (read-only).
    pub fn driver(&self) -> &RouterDriver {
        &self.driver
    }

    /// Fraction of `dest`-bound traffic the allocator forwards via
    /// neighbor `k`.
    pub fn fraction(&self, dest: NodeId, k: NodeId) -> f64 {
        self.alloc.fraction(dest, k)
    }

    /// Safety snapshot of the current routing state.
    pub fn snapshot(&self) -> RouterSnapshot {
        self.driver.snapshot(self.cfg.n)
    }

    /// Local convergence: router PASSIVE, every channel idle, at least
    /// one adjacency up (a fully isolated node is not "converged", it
    /// is partitioned), and not in restart quarantine.
    pub fn is_converged(&self) -> bool {
        !self.quarantined
            && self.driver.is_passive()
            && self.neighbors.iter().all(|nb| nb.chan.is_idle())
            && self.neighbors.iter().any(|nb| nb.chan.is_up())
    }

    /// Still holding routing back after a restart (see
    /// [`NodeCore::new`]'s quarantine comment)?
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// Earliest future instant at which [`NodeCore::on_tick`] has work.
    pub fn next_deadline(&self) -> f64 {
        let chans =
            self.neighbors.iter().map(|nb| nb.chan.next_deadline()).fold(f64::INFINITY, f64::min);
        if self.quarantined {
            // The quarantine's timeout fallback must be able to fire
            // even with every channel silent.
            chans.min(self.boot + self.cfg.reliable.dead_interval)
        } else {
            chans
        }
    }

    /// Feed one received datagram (raw socket bytes) at `now`.
    pub fn on_datagram(&mut self, buf: &[u8], now: f64) -> NodeOutput {
        let mut out = NodeOutput::default();
        let Ok(msg) = unframe_node(buf) else {
            // Corrupt or truncated: the CRC already rejected it; count
            // and continue. The sender's retransmission timer recovers.
            self.corrupt = self.corrupt.saturating_add(1);
            return out;
        };
        self.clock.observe(msg.hlc, now);
        let Some(idx) = self.index_of(msg.from) else {
            // Not a configured neighbor — a misdirected or forged
            // datagram. Dropping it is the graceful path.
            return out;
        };
        let (bodies, events) = self.neighbors[idx].chan.on_message(
            msg.incarnation,
            msg.for_inc,
            msg.for_session,
            msg.session,
            msg.body,
            now,
        );
        for b in bodies {
            self.envelope(msg.from, b, now, &mut out);
        }
        for ev in events {
            self.apply_event(idx, ev, now, &mut out);
        }
        self.observe_rtt(idx, now, &mut out);
        self.finish(now, &mut out);
        out
    }

    /// Drive timers at `now`: keepalives, retransmissions, failure
    /// detection.
    pub fn on_tick(&mut self, now: f64) -> NodeOutput {
        let mut out = NodeOutput::default();
        for idx in 0..self.neighbors.len() {
            let peer = self.neighbors[idx].peer;
            let (bodies, events) = self.neighbors[idx].chan.poll(now);
            for b in bodies {
                self.envelope(peer, b, now, &mut out);
            }
            for ev in events {
                self.apply_event(idx, ev, now, &mut out);
            }
        }
        self.finish(now, &mut out);
        out
    }

    /// Clean shutdown: emit the terminal `stop` record.
    pub fn stop(&mut self, now: f64) -> NodeOutput {
        let mut out = NodeOutput::default();
        self.record(RecordBody::Stop { corrupt: self.corrupt }, now, &mut out);
        out
    }

    // -- internals ----------------------------------------------------

    fn index_of(&self, peer: NodeId) -> Option<usize> {
        self.neighbors.iter().position(|nb| nb.peer == peer)
    }

    fn record(&mut self, body: RecordBody, now: f64, out: &mut NodeOutput) {
        out.records.push(NodeRecord {
            hlc: self.clock.tick(now),
            node: self.cfg.id,
            incarnation: self.cfg.incarnation,
            body,
        });
    }

    fn envelope(&mut self, to: NodeId, body: NodeBody, now: f64, out: &mut NodeOutput) {
        let (for_inc, for_session, session) = match self.index_of(to) {
            Some(idx) => self.neighbors[idx].chan.address(),
            None => (0, 0, 1),
        };
        let msg = NodeMsg {
            from: self.cfg.id,
            incarnation: self.cfg.incarnation,
            for_inc,
            for_session,
            session,
            hlc: self.clock.tick(now),
            body,
        };
        out.datagrams.push((to, frame_node(&msg).to_vec()));
    }

    fn apply_event(&mut self, idx: usize, ev: ChannelEvent, now: f64, out: &mut NodeOutput) {
        let peer = self.neighbors[idx].peer;
        if self.quarantined {
            // Restart quarantine: a reborn node has FD = ∞, so the LFI
            // feasibility test would accept ANY neighbor as successor —
            // including one whose own route still points back at our
            // previous life, i.e. a real transient forwarding loop. The
            // paper's safety argument assumes initialization from empty
            // *mutual* state; crash-amnesia violates that. So until
            // every configured neighbor has provably purged its routes
            // through our old incarnation (or a dead interval passes),
            // nothing reaches the router: adjacencies are remembered as
            // pending and in-order LSUs are held for replay at lift.
            match ev {
                ChannelEvent::PeerUp { incarnation } => {
                    self.record(RecordBody::PeerUp { peer, peer_inc: incarnation }, now, out);
                    self.neighbors[idx].up_pending = true;
                }
                ChannelEvent::PeerRestart { old, new } => {
                    // The peer lost its state too; whatever it sent from
                    // the dead incarnation is void.
                    self.record(RecordBody::PeerRestart { peer, old, new }, now, out);
                    self.neighbors[idx].held.clear();
                    self.neighbors[idx].up_pending = true;
                }
                ChannelEvent::PeerDown { reason } => {
                    self.record(RecordBody::PeerDown { peer, reason }, now, out);
                    self.neighbors[idx].held.clear();
                    self.neighbors[idx].up_pending = false;
                }
                ChannelEvent::Deliver(mut lsu) => {
                    lsu.ack = false; // ack substitution: transport acks only
                    self.neighbors[idx].held.push(lsu);
                }
                ChannelEvent::Discarded { in_flight, backlog, reorder } => {
                    self.record(
                        RecordBody::ChannelLoss { peer, in_flight, backlog, reorder },
                        now,
                        out,
                    );
                }
            }
            return;
        }
        match ev {
            ChannelEvent::PeerUp { incarnation } => {
                self.record(RecordBody::PeerUp { peer, peer_inc: incarnation }, now, out);
                let cost = self.neighbors[idx].effective_cost();
                self.neighbors[idx].advertised = Some(cost);
                let r = self.driver.neighbor_up(peer, cost);
                self.handle_router_output(r, now, out);
            }
            ChannelEvent::PeerRestart { old, new } => {
                // The peer lost all protocol state: tear the adjacency
                // down and bring it back up, which re-floods our full
                // topology at the new incarnation — the re-sync.
                self.record(RecordBody::PeerRestart { peer, old, new }, now, out);
                self.neighbors[idx].advertised = None;
                self.neighbors[idx].awaiting_ack = false;
                let r = self.driver.neighbor_down(peer);
                self.handle_router_output(r, now, out);
                let cost = self.neighbors[idx].effective_cost();
                self.neighbors[idx].advertised = Some(cost);
                let r = self.driver.neighbor_up(peer, cost);
                self.handle_router_output(r, now, out);
            }
            ChannelEvent::PeerDown { reason } => {
                // Same withdrawal path as a simulated link cut. The
                // channel purged whatever was unacked, and the router's
                // `LinkDown` treats the peer's pending ack as received.
                self.record(RecordBody::PeerDown { peer, reason }, now, out);
                self.neighbors[idx].advertised = None;
                self.neighbors[idx].awaiting_ack = false;
                let r = self.driver.neighbor_down(peer);
                self.handle_router_output(r, now, out);
            }
            ChannelEvent::Deliver(mut lsu) => {
                // Ack substitution (module docs): the unlabeled protocol
                // ack flag is ignored; phase completion is derived from
                // the seq-numbered transport acks instead.
                lsu.ack = false;
                let r = self.driver.deliver(peer, lsu);
                self.handle_router_output(r, now, out);
            }
            ChannelEvent::Discarded { in_flight, backlog, reorder } => {
                // Flush-or-report: the reset already purged this data;
                // recording the loss (instead of the old silent discard)
                // is what lets the soak trace audit reconcile "LSUs
                // queued" against "LSUs delivered". Routing-wise nothing
                // to do — the accompanying down/restart re-floods full
                // state, superseding whatever was dropped.
                self.record(
                    RecordBody::ChannelLoss { peer, in_flight, backlog, reorder },
                    now,
                    out,
                );
            }
        }
    }

    fn handle_router_output(&mut self, r: RouterOutput, now: f64, out: &mut NodeOutput) {
        for ch in &r.changed {
            self.record(
                RecordBody::RouteChange { dest: ch.dest, old: ch.old.clone(), new: ch.new.clone() },
                now,
                out,
            );
        }
        // Re-run the allocation heuristics for every changed
        // destination (§4.2: IH on long-term route changes).
        for ch in &r.changed {
            let costs: Vec<SuccessorCost> = {
                let router = self.driver.router();
                router
                    .successors(ch.dest)
                    .iter()
                    .map(|&k| {
                        let link = match router.link_cost(k) {
                            Some(c) => c,
                            None => INFINITE_COST,
                        };
                        SuccessorCost::new(k, router.neighbor_distance(k, ch.dest) + link)
                    })
                    .collect()
            };
            let outcome = self.alloc.refresh(ch.dest, &costs);
            if outcome.heuristic.is_some() {
                self.record(RecordBody::Alloc { dest: ch.dest, shift: outcome.shift }, now, out);
            }
        }
        for s in r.sends {
            let Some(idx) = self.index_of(s.to) else { continue };
            if !self.neighbors[idx].chan.is_up() {
                // Adjacency raced down since the router queued this;
                // the LinkUp re-flood will supersede it.
                continue;
            }
            if s.msg.entries.is_empty() && s.msg.ack {
                // Pure protocol ack: subsumed by the transport acks the
                // reliable layer sends anyway (ack substitution).
                continue;
            }
            self.neighbors[idx].awaiting_ack = true;
            let bodies = self.neighbors[idx].chan.send(s.msg, now);
            for b in bodies {
                self.envelope(s.to, b, now, out);
            }
        }
        if r.routes_changed {
            self.snapshot_pending = true;
        }
    }

    fn observe_rtt(&mut self, idx: usize, now: f64, out: &mut NodeOutput) {
        let Some(sample) = self.neighbors[idx].chan.take_rtt_sample() else { return };
        self.neighbors[idx].rtt.update(sample);
        let nb = &self.neighbors[idx];
        let (Some(advertised), true) = (nb.advertised, nb.chan.is_up()) else { return };
        let cost = nb.effective_cost();
        // Deadband: only re-advertise on a meaningful relative change,
        // so RTT jitter doesn't turn into LSU churn.
        if (cost - advertised).abs() > self.cfg.cost_deadband * advertised.max(f64::EPSILON) {
            let peer = nb.peer;
            self.neighbors[idx].advertised = Some(cost);
            self.record(RecordBody::LinkCost { peer, cost }, now, out);
            let r = self.driver.link_cost(peer, cost);
            self.handle_router_output(r, now, out);
        }
    }

    /// Lift the restart quarantine once safe: every configured neighbor
    /// has explicitly addressed our *new* incarnation — which it only
    /// does after processing it (purging any routes through our
    /// previous life first, via its `PeerRestart` or `PeerDown` path;
    /// see [`PeerChannel::peer_proven`]). Delivery counts are NOT that
    /// proof: wildcard-addressed traffic queued before the neighbor
    /// heard of the restart can deliver on the fresh channel while the
    /// neighbor still routes through our old life (counterexample found
    /// by the `mdr-verify` transport checker). Fallback: a full dead
    /// interval since boot, by which every neighbor has either
    /// re-synced or declared our old life dead — both purge.
    fn maybe_lift_quarantine(&mut self, now: f64, out: &mut NodeOutput) {
        if !self.quarantined {
            return;
        }
        if !quarantine_release_due(
            self.neighbors.iter().map(|nb| nb.chan.peer_proven()),
            now >= self.boot + self.cfg.reliable.dead_interval,
            ReleasePolicy::AllNeighborsProven,
        ) {
            return;
        }
        self.quarantined = false;
        self.record(RecordBody::Resynced { waited: now - self.boot }, now, out);
        // Replay what the quarantine held, in arrival order per
        // neighbor: adjacency first, then its buffered LSUs.
        for idx in 0..self.neighbors.len() {
            let nb = &mut self.neighbors[idx];
            let up = std::mem::take(&mut nb.up_pending) && nb.chan.is_up();
            let held = std::mem::take(&mut nb.held);
            if !up {
                continue;
            }
            let peer = nb.peer;
            let cost = nb.effective_cost();
            self.neighbors[idx].advertised = Some(cost);
            let r = self.driver.neighbor_up(peer, cost);
            self.handle_router_output(r, now, out);
            for lsu in held {
                let r = self.driver.deliver(peer, lsu);
                self.handle_router_output(r, now, out);
            }
        }
    }

    /// Entry-point postlude: quarantine lift check, at most one safety
    /// snapshot per call, then the convergence edge detector.
    fn finish(&mut self, now: f64, out: &mut NodeOutput) {
        self.maybe_lift_quarantine(now, out);
        // Ack substitution (module docs): a flushed channel proves the
        // peer processed every LSU we sent, so complete the router's
        // open phase toward it with a synthetic protocol ack.
        for idx in 0..self.neighbors.len() {
            let nb = &self.neighbors[idx];
            if !(nb.awaiting_ack && nb.chan.is_up() && nb.chan.flushed()) {
                continue;
            }
            self.neighbors[idx].awaiting_ack = false;
            let peer = self.neighbors[idx].peer;
            let r = self.driver.deliver(peer, LsuMessage::ack_only(peer));
            self.handle_router_output(r, now, out);
        }
        // FD can move with every successor set intact (see `last_fds`);
        // the cross-node audit needs those raises on the record too.
        for j in 0..self.cfg.n {
            let fd = self.driver.router().feasible_distance(NodeId(j as u32));
            if fd != self.last_fds[j] {
                self.last_fds[j] = fd;
                self.snapshot_pending = true;
            }
        }
        if self.snapshot_pending {
            self.snapshot_pending = false;
            let snap = self.driver.snapshot(self.cfg.n);
            let dests = snap
                .dests
                .iter()
                .map(|d| SnapDest {
                    dest: d.dest,
                    fd: d.fd,
                    dist: d.dist,
                    successors: d.successors.clone(),
                })
                .collect();
            // Which incarnation of each neighbor this routing state was
            // built against — lets the trace audit distinguish a stale
            // cross-epoch edge (blackhole transient) from a live one.
            let peers = self
                .neighbors
                .iter()
                .filter(|nb| nb.advertised.is_some())
                .map(|nb| PeerSync { peer: nb.peer, inc: nb.chan.incarnation().unwrap_or(0) })
                .collect();
            self.record(RecordBody::Snapshot { dests, peers }, now, out);
        }
        let converged = self.is_converged();
        if converged && !self.was_converged {
            self.record(RecordBody::Converged, now, out);
        }
        self.was_converged = converged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordBody as RB;

    fn pair() -> (NodeCore, NodeCore) {
        let (a, _) = NodeCore::new(NodeConfig::new(NodeId(0), 2, 1, vec![(NodeId(1), 0.01)]), 0.0);
        let (b, _) = NodeCore::new(NodeConfig::new(NodeId(1), 2, 1, vec![(NodeId(0), 0.01)]), 0.0);
        (a, b)
    }

    /// Pump every queued datagram between two nodes until quiescence.
    fn pump(a: &mut NodeCore, b: &mut NodeCore, mut now: f64) -> (f64, Vec<NodeRecord>) {
        let mut records = Vec::new();
        let mut wire: Vec<(NodeId, Vec<u8>)> = Vec::new();
        let drain =
            |o: NodeOutput, wire: &mut Vec<(NodeId, Vec<u8>)>, recs: &mut Vec<NodeRecord>| {
                wire.extend(o.datagrams);
                recs.extend(o.records);
            };
        drain(a.on_tick(now), &mut wire, &mut records);
        drain(b.on_tick(now), &mut wire, &mut records);
        let mut steps = 0;
        while let Some((to, bytes)) = wire.first().cloned() {
            wire.remove(0);
            now += 1e-4;
            let o = if to == NodeId(0) {
                a.on_datagram(&bytes, now)
            } else {
                b.on_datagram(&bytes, now)
            };
            drain(o, &mut wire, &mut records);
            steps += 1;
            assert!(steps < 10_000, "no quiescence");
        }
        (now, records)
    }

    #[test]
    fn two_nodes_discover_and_converge() {
        let (mut a, mut b) = pair();
        let (_, records) = pump(&mut a, &mut b, 0.0);
        assert_eq!(a.driver().router().distance(NodeId(1)), 0.01);
        assert_eq!(b.driver().router().distance(NodeId(0)), 0.01);
        assert!(a.is_converged() && b.is_converged());
        let kinds: Vec<&str> = records.iter().map(|r| r.body.kind()).collect();
        assert!(kinds.contains(&"peer_up"));
        assert!(kinds.contains(&"route_change"));
        assert!(kinds.contains(&"snapshot"));
        assert!(kinds.contains(&"converged"));
        assert_eq!(a.corrupt_datagrams(), 0);
    }

    #[test]
    fn dead_interval_withdraws_the_route() {
        let (mut a, mut b) = pair();
        let (now, _) = pump(&mut a, &mut b, 0.0);
        // Silence from b: step a's clock past the dead interval.
        let out = a.on_tick(now + a.next_deadline().max(now) + 2.0);
        let kinds: Vec<&str> = out.records.iter().map(|r| r.body.kind()).collect();
        assert!(kinds.contains(&"peer_down"), "{kinds:?}");
        assert_eq!(a.driver().router().distance(NodeId(1)), INFINITE_COST);
        assert!(a.snapshot().successors(NodeId(1)).is_empty());
        assert!(!a.is_converged(), "an isolated node is partitioned, not converged");
    }

    #[test]
    fn restart_triggers_incarnation_resync() {
        let (mut a, mut b) = pair();
        let (now, _) = pump(&mut a, &mut b, 0.0);
        // b dies and comes back as incarnation 2 with empty state. Its
        // FD = ∞ would accept ANY successor, so it boots quarantined
        // and routes nothing until a provably purged the old life.
        let (mut b2, _) =
            NodeCore::new(NodeConfig::new(NodeId(1), 2, 2, vec![(NodeId(0), 0.01)]), now);
        assert!(b2.is_quarantined());
        let (_, records) = pump(&mut a, &mut b2, now);
        let restarts: Vec<&NodeRecord> =
            records.iter().filter(|r| r.body.kind() == "peer_restart").collect();
        assert_eq!(restarts.len(), 1, "a saw exactly one restart");
        assert!(matches!(restarts[0].body, RB::PeerRestart { old: 1, new: 2, .. }));
        // The quarantine lifted on proof-of-purge (no dead-interval
        // passed inside pump's sub-millisecond steps) and emitted its
        // record; only then did b2 resume routing and converge.
        assert!(!b2.is_quarantined());
        let resynced: Vec<&NodeRecord> =
            records.iter().filter(|r| r.body.kind() == "resynced").collect();
        assert_eq!(resynced.len(), 1, "exactly one quarantine lift");
        assert!(matches!(resynced[0].body, RB::Resynced { waited } if waited < 0.5));
        // Fully re-synced at the new incarnation.
        assert_eq!(b2.driver().router().distance(NodeId(0)), 0.01);
        assert!(a.is_converged() && b2.is_converged());
    }

    #[test]
    fn first_boot_never_quarantines() {
        let (a, _) = NodeCore::new(NodeConfig::new(NodeId(0), 2, 1, vec![(NodeId(1), 0.01)]), 0.0);
        assert!(!a.is_quarantined(), "incarnation 1 is the paper's safe initialization");
    }

    #[test]
    fn corrupt_datagrams_count_and_never_panic() {
        let (mut a, _) = pair();
        for garbage in [&b""[..], &b"\x00"[..], &[0xff; 64][..]] {
            let out = a.on_datagram(garbage, 1.0);
            assert!(out.datagrams.is_empty());
        }
        // A valid frame from a node that is not a configured neighbor
        // drops without counting as corrupt.
        let msg = NodeMsg {
            from: NodeId(7),
            incarnation: 1,
            for_inc: 0,
            for_session: 0,
            session: 1,
            hlc: Default::default(),
            body: NodeBody::Hello { ts_us: 0, echo_ts_us: 0, hold_us: 0 },
        };
        let out = a.on_datagram(&frame_node(&msg), 1.1);
        assert!(out.datagrams.is_empty());
        assert_eq!(a.corrupt_datagrams(), 3);
        let stop = a.stop(1.2);
        assert!(matches!(stop.records[0].body, RB::Stop { corrupt: 3 }));
    }

    #[test]
    fn allocator_tracks_successor_changes() {
        let (mut a, mut b) = pair();
        pump(&mut a, &mut b, 0.0);
        assert_eq!(a.fraction(NodeId(1), NodeId(1)), 1.0, "single successor gets all traffic");
    }

    #[test]
    fn records_carry_monotone_hlc_stamps() {
        let (mut a, mut b) = pair();
        let (_, records) = pump(&mut a, &mut b, 0.0);
        for pair in records.windows(2) {
            if pair[0].node == pair[1].node {
                assert!(pair[0].hlc < pair[1].hlc, "per-node stamps strictly increase");
            }
        }
    }
}
