//! The per-process telemetry schema: one [`NodeRecord`] per JSON line.
//!
//! Each node streams its records through
//! [`mdr_sim::telemetry::JsonlSink`] into a per-incarnation trace file
//! (`node<i>.inc<k>.jsonl`), so live deployments inherit the simulator
//! trace suite's determinism guarantees. Records are stamped with the
//! node's [hybrid logical clock](crate::hlc) — sorting all files of a
//! soak run by `(hlc_l, hlc_c, node)` yields one causally consistent
//! history, which [`crate::trace`] replays through the LFI audit.
//!
//! The schema is symmetric: [`serde::Serialize`] writes exactly what
//! [`serde::Deserialize`] reads, pinned by a round-trip test, so the
//! audit can never drift from the emitter.

use crate::reliable::DownReason;
use mdr_net::NodeId;
use mdr_proto::HlcStamp;
use serde::{Deserialize, Error, Serialize, Value};

/// One live adjacency inside a [`RecordBody::Snapshot`]: which
/// incarnation of the neighbor this node's routing state refers to. The
/// merged-trace audit uses this to tell a *fresh* successor edge (both
/// ends agree on the epoch) from a *stale* one pointing at a peer that
/// has since crashed and been reborn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerSync {
    /// The neighbor.
    pub peer: NodeId,
    /// The neighbor incarnation this adjacency is established with.
    pub inc: u32,
}

/// One destination's safety-relevant state inside a
/// [`RecordBody::Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnapDest {
    /// Destination router.
    pub dest: NodeId,
    /// Feasible distance `FD^i_j`.
    pub fd: f64,
    /// Current distance `D^i_j`.
    pub dist: f64,
    /// Successor set `S^i_j`, ascending.
    pub successors: Vec<NodeId>,
}

/// What happened.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordBody {
    /// The process started (or restarted) and joined the control plane.
    Start {
        /// Network size.
        n: u64,
        /// Configured neighbors.
        neighbors: Vec<NodeId>,
    },
    /// An adjacency came up.
    PeerUp {
        /// The peer.
        peer: NodeId,
        /// The peer's incarnation.
        peer_inc: u32,
    },
    /// A peer restarted (incarnation advanced); the adjacency was torn
    /// down and re-established around this record.
    PeerRestart {
        /// The peer.
        peer: NodeId,
        /// Previous incarnation.
        old: u32,
        /// New incarnation.
        new: u32,
    },
    /// An adjacency failed.
    PeerDown {
        /// The peer.
        peer: NodeId,
        /// Why.
        reason: DownReason,
    },
    /// A channel reset discarded undelivered data (the flush-or-report
    /// contract: transport loss is recorded, never silent). Follows the
    /// `peer_down`/`peer_restart` that caused the reset.
    ChannelLoss {
        /// The peer.
        peer: NodeId,
        /// Segments in flight (sent, never acked) that were dropped.
        in_flight: u64,
        /// Segments queued behind the window, never transmitted.
        backlog: u64,
        /// Out-of-order segments buffered but never released.
        reorder: u64,
    },
    /// A successor set changed.
    RouteChange {
        /// Destination.
        dest: NodeId,
        /// Before, ascending.
        old: Vec<NodeId>,
        /// After, ascending.
        new: Vec<NodeId>,
    },
    /// Full safety snapshot (successors + FDs for every destination) —
    /// the merged-trace LFI audit replays exactly these.
    Snapshot {
        /// Per-destination state, ascending by destination.
        dests: Vec<SnapDest>,
        /// Live adjacencies with the peer incarnations they refer to.
        peers: Vec<PeerSync>,
    },
    /// A restarted process finished its quarantine: every configured
    /// neighbor either proved it purged routes through the previous
    /// life (by resetting its reliable channel) or timed out.
    Resynced {
        /// Seconds spent quarantined after `start`.
        waited: f64,
    },
    /// The flow allocator redistributed traffic toward a destination.
    Alloc {
        /// Destination.
        dest: NodeId,
        /// Traffic mass moved (half L1 distance; in `[0, 1]`).
        shift: f64,
    },
    /// The marginal-cost estimate for an adjacent link changed enough
    /// to re-advertise.
    LinkCost {
        /// The neighbor across the link.
        peer: NodeId,
        /// New cost (seconds).
        cost: f64,
    },
    /// The node reached local convergence: router PASSIVE, all
    /// channels idle, every configured neighbor resolved up or down.
    Converged,
    /// The process is shutting down cleanly.
    Stop {
        /// Undecodable datagrams seen over this life.
        corrupt: u64,
    },
}

impl RecordBody {
    /// Stable snake-case label (the `kind` tag on the wire).
    pub fn kind(&self) -> &'static str {
        match self {
            RecordBody::Start { .. } => "start",
            RecordBody::PeerUp { .. } => "peer_up",
            RecordBody::PeerRestart { .. } => "peer_restart",
            RecordBody::PeerDown { .. } => "peer_down",
            RecordBody::ChannelLoss { .. } => "channel_loss",
            RecordBody::RouteChange { .. } => "route_change",
            RecordBody::Snapshot { .. } => "snapshot",
            RecordBody::Resynced { .. } => "resynced",
            RecordBody::Alloc { .. } => "alloc",
            RecordBody::LinkCost { .. } => "link_cost",
            RecordBody::Converged => "converged",
            RecordBody::Stop { .. } => "stop",
        }
    }
}

/// One telemetry record: HLC stamp, emitting node + incarnation, body.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRecord {
    /// Hybrid-logical-clock stamp of the emission.
    pub hlc: HlcStamp,
    /// Emitting node.
    pub node: NodeId,
    /// Emitting process incarnation.
    pub incarnation: u32,
    /// What happened.
    pub body: RecordBody,
}

impl NodeRecord {
    /// The merge key: records across all trace files sort by
    /// `(hlc_l, hlc_c, node)` — causally consistent by the HLC
    /// property, totally ordered by the node tiebreak.
    pub fn merge_key(&self) -> (u64, u32, u32) {
        (self.hlc.l, self.hlc.c, self.node.0)
    }
}

fn nodes_value(nodes: &[NodeId]) -> Value {
    Value::Seq(nodes.iter().map(|n| Value::U64(n.0 as u64)).collect())
}

// The vendored serde derive covers only unit-variant enums, so the
// record serializes by hand as a flat `kind`-tagged map (same scheme as
// `mdr_sim::telemetry::SimEvent`).
impl Serialize for NodeRecord {
    fn serialize_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            ("kind".into(), Value::Str(self.body.kind().into())),
            ("hlc_l".into(), Value::U64(self.hlc.l)),
            ("hlc_c".into(), Value::U64(self.hlc.c as u64)),
            ("node".into(), Value::U64(self.node.0 as u64)),
            ("inc".into(), Value::U64(self.incarnation as u64)),
        ];
        match &self.body {
            RecordBody::Start { n, neighbors } => {
                m.push(("n".into(), Value::U64(*n)));
                m.push(("neighbors".into(), nodes_value(neighbors)));
            }
            RecordBody::PeerUp { peer, peer_inc } => {
                m.push(("peer".into(), Value::U64(peer.0 as u64)));
                m.push(("peer_inc".into(), Value::U64(*peer_inc as u64)));
            }
            RecordBody::PeerRestart { peer, old, new } => {
                m.push(("peer".into(), Value::U64(peer.0 as u64)));
                m.push(("old".into(), Value::U64(*old as u64)));
                m.push(("new".into(), Value::U64(*new as u64)));
            }
            RecordBody::PeerDown { peer, reason } => {
                m.push(("peer".into(), Value::U64(peer.0 as u64)));
                m.push(("reason".into(), Value::Str(reason.as_str().into())));
            }
            RecordBody::ChannelLoss { peer, in_flight, backlog, reorder } => {
                m.push(("peer".into(), Value::U64(peer.0 as u64)));
                m.push(("in_flight".into(), Value::U64(*in_flight)));
                m.push(("backlog".into(), Value::U64(*backlog)));
                m.push(("reorder".into(), Value::U64(*reorder)));
            }
            RecordBody::RouteChange { dest, old, new } => {
                m.push(("dest".into(), Value::U64(dest.0 as u64)));
                m.push(("old".into(), nodes_value(old)));
                m.push(("new".into(), nodes_value(new)));
            }
            RecordBody::Snapshot { dests, peers } => {
                let seq = dests
                    .iter()
                    .map(|d| {
                        Value::Map(vec![
                            ("dest".into(), Value::U64(d.dest.0 as u64)),
                            ("fd".into(), Value::F64(d.fd)),
                            ("dist".into(), Value::F64(d.dist)),
                            ("succ".into(), nodes_value(&d.successors)),
                        ])
                    })
                    .collect();
                m.push(("dests".into(), Value::Seq(seq)));
                let seq = peers
                    .iter()
                    .map(|p| {
                        Value::Map(vec![
                            ("peer".into(), Value::U64(p.peer.0 as u64)),
                            ("inc".into(), Value::U64(p.inc as u64)),
                        ])
                    })
                    .collect();
                m.push(("peers".into(), Value::Seq(seq)));
            }
            RecordBody::Resynced { waited } => {
                m.push(("waited".into(), Value::F64(*waited)));
            }
            RecordBody::Alloc { dest, shift } => {
                m.push(("dest".into(), Value::U64(dest.0 as u64)));
                m.push(("shift".into(), Value::F64(*shift)));
            }
            RecordBody::LinkCost { peer, cost } => {
                m.push(("peer".into(), Value::U64(peer.0 as u64)));
                m.push(("cost".into(), Value::F64(*cost)));
            }
            RecordBody::Converged => {}
            RecordBody::Stop { corrupt } => {
                m.push(("corrupt".into(), Value::U64(*corrupt)));
            }
        }
        Value::Map(m)
    }
}

const TY: &str = "NodeRecord";

fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    T::deserialize_value(v.get_field(name).ok_or_else(|| Error::missing_field(name, TY))?)
}

fn node_field(v: &Value, name: &str) -> Result<NodeId, Error> {
    Ok(NodeId(field::<u32>(v, name)?))
}

fn nodes_field(v: &Value, name: &str) -> Result<Vec<NodeId>, Error> {
    Ok(field::<Vec<u32>>(v, name)?.into_iter().map(NodeId).collect())
}

impl Deserialize for NodeRecord {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let kind: String = field(v, "kind")?;
        let body = match kind.as_str() {
            "start" => {
                RecordBody::Start { n: field(v, "n")?, neighbors: nodes_field(v, "neighbors")? }
            }
            "peer_up" => {
                RecordBody::PeerUp { peer: node_field(v, "peer")?, peer_inc: field(v, "peer_inc")? }
            }
            "peer_restart" => RecordBody::PeerRestart {
                peer: node_field(v, "peer")?,
                old: field(v, "old")?,
                new: field(v, "new")?,
            },
            "peer_down" => {
                let reason: String = field(v, "reason")?;
                let reason = match reason.as_str() {
                    "dead_interval" => DownReason::DeadInterval,
                    "retry_exhausted" => DownReason::RetryExhausted,
                    "restarted" => DownReason::Restarted,
                    "session_reset" => DownReason::SessionReset,
                    "reorder_overflow" => DownReason::ReorderOverflow,
                    other => return Err(Error::custom(format!("unknown down reason `{other}`"))),
                };
                RecordBody::PeerDown { peer: node_field(v, "peer")?, reason }
            }
            "channel_loss" => RecordBody::ChannelLoss {
                peer: node_field(v, "peer")?,
                in_flight: field(v, "in_flight")?,
                backlog: field(v, "backlog")?,
                reorder: field(v, "reorder")?,
            },
            "route_change" => RecordBody::RouteChange {
                dest: node_field(v, "dest")?,
                old: nodes_field(v, "old")?,
                new: nodes_field(v, "new")?,
            },
            "snapshot" => {
                let seq = v
                    .get_field("dests")
                    .and_then(Value::as_seq)
                    .ok_or_else(|| Error::missing_field("dests", TY))?;
                let mut dests = Vec::with_capacity(seq.len());
                for d in seq {
                    dests.push(SnapDest {
                        dest: node_field(d, "dest")?,
                        fd: field(d, "fd")?,
                        dist: field(d, "dist")?,
                        successors: nodes_field(d, "succ")?,
                    });
                }
                let seq = v
                    .get_field("peers")
                    .and_then(Value::as_seq)
                    .ok_or_else(|| Error::missing_field("peers", TY))?;
                let mut peers = Vec::with_capacity(seq.len());
                for p in seq {
                    peers.push(PeerSync { peer: node_field(p, "peer")?, inc: field(p, "inc")? });
                }
                RecordBody::Snapshot { dests, peers }
            }
            "resynced" => RecordBody::Resynced { waited: field(v, "waited")? },
            "alloc" => {
                RecordBody::Alloc { dest: node_field(v, "dest")?, shift: field(v, "shift")? }
            }
            "link_cost" => {
                RecordBody::LinkCost { peer: node_field(v, "peer")?, cost: field(v, "cost")? }
            }
            "converged" => RecordBody::Converged,
            "stop" => RecordBody::Stop { corrupt: field(v, "corrupt")? },
            other => return Err(Error::custom(format!("unknown record kind `{other}`"))),
        };
        Ok(NodeRecord {
            hlc: HlcStamp { l: field(v, "hlc_l")?, c: field(v, "hlc_c")? },
            node: node_field(v, "node")?,
            incarnation: field(v, "inc")?,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(body: RecordBody) -> NodeRecord {
        NodeRecord { hlc: HlcStamp { l: 123_456, c: 7 }, node: NodeId(3), incarnation: 2, body }
    }

    #[test]
    fn every_variant_roundtrips_through_json() {
        let bodies = vec![
            RecordBody::Start { n: 8, neighbors: vec![NodeId(1), NodeId(2)] },
            RecordBody::PeerUp { peer: NodeId(1), peer_inc: 4 },
            RecordBody::PeerRestart { peer: NodeId(1), old: 4, new: 5 },
            RecordBody::PeerDown { peer: NodeId(2), reason: DownReason::RetryExhausted },
            RecordBody::PeerDown { peer: NodeId(2), reason: DownReason::SessionReset },
            RecordBody::PeerDown { peer: NodeId(2), reason: DownReason::ReorderOverflow },
            RecordBody::ChannelLoss { peer: NodeId(2), in_flight: 3, backlog: 1, reorder: 0 },
            RecordBody::RouteChange { dest: NodeId(7), old: vec![], new: vec![NodeId(1)] },
            RecordBody::Snapshot {
                dests: vec![SnapDest {
                    dest: NodeId(7),
                    fd: 2.5,
                    dist: 2.5,
                    successors: vec![NodeId(1), NodeId(2)],
                }],
                peers: vec![
                    PeerSync { peer: NodeId(1), inc: 3 },
                    PeerSync { peer: NodeId(2), inc: 1 },
                ],
            },
            RecordBody::Resynced { waited: 0.375 },
            RecordBody::Alloc { dest: NodeId(7), shift: 0.25 },
            RecordBody::LinkCost { peer: NodeId(1), cost: 0.125 },
            RecordBody::Converged,
            RecordBody::Stop { corrupt: 0 },
        ];
        for body in bodies {
            let r = rec(body);
            let line = serde_json::to_string(&r).unwrap();
            let back: NodeRecord = serde_json::from_str(&line).unwrap();
            assert_eq!(back, r, "round-trip failed for {line}");
        }
    }

    #[test]
    fn merge_key_orders_by_hlc_then_node() {
        let a = rec(RecordBody::Converged);
        let mut b = a.clone();
        b.node = NodeId(4);
        let mut c = a.clone();
        c.hlc.c = 8;
        assert!(a.merge_key() < b.merge_key());
        assert!(b.merge_key() < c.merge_key());
    }

    #[test]
    fn unknown_kind_is_an_error_not_a_panic() {
        let r = serde_json::from_str::<NodeRecord>("{\"kind\":\"mystery\",\"hlc_l\":0}");
        assert!(r.is_err());
        let r = serde_json::from_str::<NodeRecord>("not json at all");
        assert!(r.is_err());
    }
}
