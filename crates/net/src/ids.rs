//! Identifier newtypes for routers and directed links.
//!
//! The paper breaks ties "in favor of the neighbor with the lowest
//! address" (procedure MTU, Fig. 3), so node identifiers carry a total
//! order that every algorithm in the workspace respects.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A router (node) identifier.
///
/// Nodes are dense small integers `0..n`, which lets routing tables be
/// flat vectors indexed by destination. The numeric value is also the
/// router's "address" used for deterministic tie-breaking.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index form for vector-indexed tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v as u32)
    }
}

/// A *directed* link identifier: an index into [`crate::Topology`]'s link
/// table. A bidirectional physical link is two `LinkId`s, one per
/// direction, which may carry different costs (§2.1: "Each link is
/// bidirectional with possibly different costs in each direction").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Index form for vector-indexed tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_orders_by_address() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(NodeId::from(3usize), NodeId(3));
        assert_eq!(NodeId::from(3u32), NodeId(3));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", NodeId(4)), "4");
        assert_eq!(format!("{:?}", NodeId(4)), "n4");
        assert_eq!(format!("{}", LinkId(9)), "9");
        assert_eq!(format!("{:?}", LinkId(9)), "l9");
    }

    #[test]
    fn link_id_index() {
        assert_eq!(LinkId(12).index(), 12);
        assert!(LinkId(0) < LinkId(1));
    }
}
