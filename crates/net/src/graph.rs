//! The network graph `G = (N, L)`.
//!
//! A [`Topology`] is an immutable directed multigraph-free graph of
//! routers and directed links, with sorted adjacency for deterministic
//! iteration. Use [`TopologyBuilder`] to construct one;
//! `TopologyBuilder::bidi` adds the two directed links of a physical
//! (bidirectional) link in one call, matching §2.1 of the paper.

use crate::error::NetError;
use crate::ids::{LinkId, NodeId};
use crate::link::Link;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An immutable network topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// Human-readable node names (CAIRN uses site names; synthetic
    /// topologies use the numeric id).
    names: Vec<String>,
    /// All directed links, index = `LinkId`.
    links: Vec<Link>,
    /// `out_adj[n]` = sorted-by-neighbor list of outgoing `LinkId`s of `n`.
    out_adj: Vec<Vec<LinkId>>,
    /// `in_adj[n]` = sorted-by-neighbor list of incoming `LinkId`s of `n`.
    in_adj: Vec<Vec<LinkId>>,
}

impl Topology {
    /// Number of routers `|N|`.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of *directed* links `|L|` (twice the physical link count
    /// for fully bidirectional topologies).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterator over all node ids in ascending address order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len() as u32).map(NodeId)
    }

    /// All directed links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Look up a link by id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Name of a node.
    pub fn name(&self, n: NodeId) -> &str {
        &self.names[n.index()]
    }

    /// Node id by name, if present.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.iter().position(|n| n == name).map(NodeId::from)
    }

    /// Outgoing links of `n`, sorted by neighbor address.
    pub fn out_links(&self, n: NodeId) -> impl Iterator<Item = (LinkId, &Link)> + '_ {
        self.out_adj[n.index()].iter().map(move |&id| (id, &self.links[id.index()]))
    }

    /// Incoming links of `n`, sorted by neighbor address.
    pub fn in_links(&self, n: NodeId) -> impl Iterator<Item = (LinkId, &Link)> + '_ {
        self.in_adj[n.index()].iter().map(move |&id| (id, &self.links[id.index()]))
    }

    /// Neighbors reachable over an outgoing link, ascending address order.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_links(n).map(|(_, l)| l.to)
    }

    /// Out-degree of `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.out_adj[n.index()].len()
    }

    /// Directed link id from `a` to `b`, if one exists.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.out_adj[a.index()].iter().copied().find(|&id| self.links[id.index()].to == b)
    }

    /// The reverse direction of a directed link, if present (always
    /// present for topologies built with [`TopologyBuilder::bidi`]).
    pub fn reverse(&self, id: LinkId) -> Option<LinkId> {
        let l = self.link(id);
        self.link_between(l.to, l.from)
    }

    /// Hop-count distances from `src` to every node (BFS); `usize::MAX`
    /// for unreachable nodes.
    pub fn hop_distances(&self, src: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.node_count()];
        dist[src.index()] = 0;
        let mut q = VecDeque::new();
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            let du = dist[u.index()];
            for v in self.neighbors(u) {
                if dist[v.index()] == usize::MAX {
                    dist[v.index()] = du + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// True if every node reaches every other node.
    pub fn is_connected(&self) -> bool {
        if self.node_count() == 0 {
            return false;
        }
        self.nodes().all(|n| self.hop_distances(n).iter().all(|&d| d != usize::MAX))
    }

    /// Hop-count diameter; `None` if disconnected or empty.
    pub fn diameter(&self) -> Option<usize> {
        if self.node_count() == 0 {
            return None;
        }
        let mut best = 0usize;
        for n in self.nodes() {
            let d = self.hop_distances(n);
            for &x in &d {
                if x == usize::MAX {
                    return None;
                }
                best = best.max(x);
            }
        }
        Some(best)
    }
}

/// Builder for [`Topology`]. Nodes are added first (implicitly via
/// [`TopologyBuilder::nodes`] or by name), then links.
#[derive(Debug, Default, Clone)]
pub struct TopologyBuilder {
    names: Vec<String>,
    links: Vec<Link>,
}

impl TopologyBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` anonymous nodes named by their numeric ids.
    pub fn nodes(mut self, n: usize) -> Self {
        for _ in 0..n {
            let id = self.names.len();
            self.names.push(id.to_string());
        }
        self
    }

    /// Add one named node, returning its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.names.len() as u32);
        self.names.push(name.into());
        id
    }

    /// Add a single directed link.
    pub fn link(mut self, from: NodeId, to: NodeId, capacity: f64, prop_delay: f64) -> Self {
        self.links.push(Link::new(from, to, capacity, prop_delay));
        self
    }

    /// Add both directions of a physical link with symmetric
    /// characteristics.
    pub fn bidi(self, a: NodeId, b: NodeId, capacity: f64, prop_delay: f64) -> Self {
        self.link(a, b, capacity, prop_delay).link(b, a, capacity, prop_delay)
    }

    /// Validate and freeze into a [`Topology`].
    pub fn build(mut self) -> Result<Topology, NetError> {
        if self.names.is_empty() {
            return Err(NetError::Empty);
        }
        // Normalize anonymous names.
        for (i, name) in self.names.iter_mut().enumerate() {
            if name.is_empty() {
                *name = i.to_string();
            }
        }
        let n = self.names.len() as u32;
        let mut seen: Vec<(NodeId, NodeId)> = Vec::with_capacity(self.links.len());
        for l in &self.links {
            if l.from.0 >= n {
                return Err(NetError::UnknownNode(l.from));
            }
            if l.to.0 >= n {
                return Err(NetError::UnknownNode(l.to));
            }
            if l.from == l.to {
                return Err(NetError::SelfLoop(l.from));
            }
            if !(l.capacity.is_finite() && l.capacity > 0.0) {
                return Err(NetError::BadLinkParameter {
                    from: l.from,
                    to: l.to,
                    what: "capacity must be positive and finite",
                });
            }
            if !(l.prop_delay.is_finite() && l.prop_delay >= 0.0) {
                return Err(NetError::BadLinkParameter {
                    from: l.from,
                    to: l.to,
                    what: "propagation delay must be non-negative and finite",
                });
            }
            if seen.contains(&(l.from, l.to)) {
                return Err(NetError::DuplicateLink(l.from, l.to));
            }
            seen.push((l.from, l.to));
        }
        // Sort links deterministically by (from, to) so LinkIds are stable
        // regardless of insertion order.
        self.links.sort_by_key(|l| (l.from, l.to));
        let mut out_adj = vec![Vec::new(); self.names.len()];
        let mut in_adj = vec![Vec::new(); self.names.len()];
        for (i, l) in self.links.iter().enumerate() {
            out_adj[l.from.index()].push(LinkId(i as u32));
            in_adj[l.to.index()].push(LinkId(i as u32));
        }
        // in_adj entries sorted by the *neighbor* (the link head).
        for (node, adj) in in_adj.iter_mut().enumerate() {
            let _ = node;
            adj.sort_by_key(|id| self.links[id.index()].from);
        }
        Ok(Topology { names: self.names, links: self.links, out_adj, in_adj })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_line(n: usize) -> Topology {
        let mut b = TopologyBuilder::new();
        let ids: Vec<NodeId> = (0..n).map(|i| b.add_node(i.to_string())).collect();
        let mut b2 = b;
        for w in ids.windows(2) {
            b2 = b2.bidi(w[0], w[1], 1e7, 0.001);
        }
        b2.build().unwrap()
    }

    #[test]
    fn line_topology_basics() {
        let t = mk_line(4);
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.link_count(), 6);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), Some(3));
        assert_eq!(t.degree(NodeId(0)), 1);
        assert_eq!(t.degree(NodeId(1)), 2);
    }

    #[test]
    fn link_between_and_reverse() {
        let t = mk_line(3);
        let ab = t.link_between(NodeId(0), NodeId(1)).unwrap();
        let ba = t.reverse(ab).unwrap();
        assert_eq!(t.link(ba).from, NodeId(1));
        assert_eq!(t.link(ba).to, NodeId(0));
        assert!(t.link_between(NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn neighbors_sorted_by_address() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        let d = b.add_node("d");
        // Insert links in shuffled order; adjacency must come out sorted.
        let t = b.bidi(a, d, 1e7, 0.001).bidi(a, c, 1e7, 0.001).build().unwrap();
        let nbrs: Vec<NodeId> = t.neighbors(a).collect();
        assert_eq!(nbrs, vec![c, d]);
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node("a");
        let err = b.link(a, a, 1e7, 0.001).build().unwrap_err();
        assert_eq!(err, NetError::SelfLoop(a));
    }

    #[test]
    fn rejects_duplicate_link() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("b");
        let err = b.link(a, c, 1e7, 0.0).link(a, c, 2e7, 0.0).build().unwrap_err();
        assert_eq!(err, NetError::DuplicateLink(a, c));
    }

    #[test]
    fn rejects_bad_capacity() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("b");
        let err = b.link(a, c, 0.0, 0.0).build().unwrap_err();
        assert!(matches!(err, NetError::BadLinkParameter { .. }));
    }

    #[test]
    fn rejects_unknown_node() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node("a");
        let err = b.link(a, NodeId(5), 1e7, 0.0).build().unwrap_err();
        assert_eq!(err, NetError::UnknownNode(NodeId(5)));
    }

    #[test]
    fn empty_topology_rejected() {
        assert_eq!(TopologyBuilder::new().build().unwrap_err(), NetError::Empty);
    }

    #[test]
    fn disconnected_detected() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("b");
        let _d = b.add_node("c");
        let t = b.bidi(a, c, 1e7, 0.0).build().unwrap();
        assert!(!t.is_connected());
        assert_eq!(t.diameter(), None);
    }

    #[test]
    fn node_lookup_by_name() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node("alpha");
        let t = b.clone().build();
        // builder consumed above via clone; original still usable
        let t = t.unwrap();
        assert_eq!(t.node_by_name("alpha"), Some(a));
        assert_eq!(t.node_by_name("beta"), None);
        assert_eq!(t.name(a), "alpha");
    }
}
