//! Link delay models.
//!
//! The paper (§4.3, Eq. 24) models links as M/M/1 queues:
//!
//! ```text
//! D_ik(f_ik) = f_ik / (C_ik − f_ik) + τ_ik · f_ik
//! ```
//!
//! where `D_ik` is *rate × delay* (expected packets/s on the link times
//! expected per-packet delay), `f_ik` the flow, `C_ik` the capacity and
//! `τ_ik` the propagation delay. The link *cost* used for routing is the
//! **marginal delay** `D'_ik(f_ik) = ∂D/∂f`.
//!
//! The paper writes the formula with flow measured in packets (unit
//! packet length). We keep flows and capacities in bits/second and carry
//! an explicit mean packet length `L` (bits): with packet arrival rate
//! `λ = f/L` and M/M/1 service rate `μ = C/L`,
//!
//! * per-packet delay   `T(f) = L/(C−f) + τ`
//! * rate×delay         `D(f) = λ·T = f/(C−f) + τ·f/L`
//! * marginal delay     `D'(f) = C/(C−f)² + τ/L`  (per bit/s of added flow,
//!   measured in packet-seconds per bit — a consistent unit across links,
//!   which is all Gallager's condition needs)
//!
//! With `L = 1` these reduce exactly to the paper's Eq. (24) and its
//! derivative. `D(f)` is continuous, convex, and tends to infinity as
//! `f → C`, the properties Gallager's theory requires; beyond capacity we
//! continue it with a steep affine extension so optimizers can evaluate
//! (and be repelled from) infeasible points without NaNs.

use serde::{Deserialize, Serialize};

/// Trait for link delay models, parameterized by the offered flow in
/// bits/second.
pub trait LinkDelayModel {
    /// Expected per-packet delay `T(f)` in seconds (queueing +
    /// transmission + propagation).
    fn packet_delay(&self, flow: f64) -> f64;
    /// `D(f)`: expected rate × delay (Gallager's objective summand).
    fn rate_delay(&self, flow: f64) -> f64;
    /// Marginal delay `D'(f)` — the link cost `l_ik`.
    fn marginal_delay(&self, flow: f64) -> f64;
    /// Capacity in bits/second.
    fn capacity(&self) -> f64;
}

/// M/M/1 delay model of Eq. (24).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mm1 {
    /// Link capacity `C` in bits/s.
    pub capacity: f64,
    /// Propagation delay `τ` in seconds.
    pub prop_delay: f64,
    /// Mean packet length `L` in bits.
    pub mean_packet_bits: f64,
    /// Utilization at which the convex curve is continued by an affine
    /// extension (to stay finite/stable near saturation, mirroring the
    /// paper's observation that Eq. 24 "becomes unstable when f
    /// approaches C").
    pub cutoff_utilization: f64,
}

impl Mm1 {
    /// Standard model: cutoff at 99% utilization.
    pub fn new(capacity: f64, prop_delay: f64, mean_packet_bits: f64) -> Self {
        Mm1 { capacity, prop_delay, mean_packet_bits, cutoff_utilization: 0.99 }
    }

    /// The paper's unit-packet form (`L = 1`), used by the analytic
    /// evaluator and the OPT solver where only relative costs matter.
    pub fn unit_packets(capacity: f64, prop_delay: f64) -> Self {
        Mm1::new(capacity, prop_delay, 1.0)
    }

    #[inline]
    fn cutoff_flow(&self) -> f64 {
        self.capacity * self.cutoff_utilization
    }
}

impl LinkDelayModel for Mm1 {
    fn packet_delay(&self, flow: f64) -> f64 {
        let f = flow.max(0.0);
        let fc = self.cutoff_flow();
        if f < fc {
            self.mean_packet_bits / (self.capacity - f) + self.prop_delay
        } else {
            // Affine continuation with matched value and slope at fc.
            let base = self.mean_packet_bits / (self.capacity - fc);
            let slope = self.mean_packet_bits / ((self.capacity - fc) * (self.capacity - fc));
            base + slope * (f - fc) + self.prop_delay
        }
    }

    fn rate_delay(&self, flow: f64) -> f64 {
        let f = flow.max(0.0);
        (f / self.mean_packet_bits) * self.packet_delay(f)
    }

    fn marginal_delay(&self, flow: f64) -> f64 {
        let f = flow.max(0.0);
        let fc = self.cutoff_flow();
        let l = self.mean_packet_bits;
        if f < fc {
            // D(f) = f/(C−f) + τf/L  ⇒  D'(f) = C/(C−f)² + τ/L.
            self.capacity / ((self.capacity - f) * (self.capacity - f)) + self.prop_delay / l
        } else {
            // Derivative of the affine-extended D(f); grows linearly so the
            // optimizer is pushed away from saturation.
            let c = self.capacity;
            let base_t = l / (c - fc) + self.prop_delay; // T(fc) w/o extension
            let slope = l / ((c - fc) * (c - fc));
            // D(f) = (f/l) (base_t + slope (f-fc)); D'(f):
            (base_t + slope * (2.0 * f - fc)) / l
        }
    }

    fn capacity(&self) -> f64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Mm1 {
        Mm1::unit_packets(10.0, 0.5)
    }

    #[test]
    fn matches_paper_eq_24_below_cutoff() {
        // With L=1: D(f) = f/(C-f) + tau*f.
        let model = m();
        let f = 4.0;
        let expect = f / (10.0 - f) + 0.5 * f;
        assert!((model.rate_delay(f) - expect).abs() < 1e-12);
    }

    #[test]
    fn marginal_matches_derivative_numerically() {
        let model = m();
        for &f in &[0.5, 1.0, 3.5, 7.0, 9.0] {
            let h = 1e-6;
            let num = (model.rate_delay(f + h) - model.rate_delay(f - h)) / (2.0 * h);
            let ana = model.marginal_delay(f);
            assert!(
                (num - ana).abs() / ana.max(1.0) < 1e-4,
                "f={f}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn marginal_is_monotone_increasing() {
        // Convexity of D implies D' nondecreasing, including across the
        // affine-extension boundary.
        let model = m();
        let mut prev = 0.0;
        let mut f = 0.0;
        while f < 15.0 {
            let d = model.marginal_delay(f);
            assert!(d >= prev - 1e-12, "non-monotone at f={f}");
            prev = d;
            f += 0.05;
        }
    }

    #[test]
    fn packet_delay_continuous_at_cutoff() {
        let model = m();
        let fc = 10.0 * 0.99;
        let lo = model.packet_delay(fc - 1e-9);
        let hi = model.packet_delay(fc + 1e-9);
        assert!((lo - hi).abs() < 1e-6);
    }

    #[test]
    fn finite_beyond_capacity() {
        let model = m();
        assert!(model.packet_delay(20.0).is_finite());
        assert!(model.rate_delay(20.0).is_finite());
        assert!(model.marginal_delay(20.0).is_finite());
        // And much larger than uncongested values.
        assert!(model.marginal_delay(20.0) > model.marginal_delay(1.0) * 10.0);
    }

    #[test]
    fn zero_flow_marginal_is_idle_cost() {
        // D'(0) = 1/C + tau with L=1: the uncongested cost orders links by
        // capacity and propagation delay, like a static metric would.
        let model = m();
        assert!((model.marginal_delay(0.0) - (1.0 / 10.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn bits_parameterization_scales() {
        // Per-packet delay with L bits at capacity C behaves like the
        // unit model at capacity C/L.
        let model = Mm1::new(10_000_000.0, 0.001, 1000.0);
        let d = model.packet_delay(0.0);
        assert!((d - (1000.0 / 10_000_000.0 + 0.001)).abs() < 1e-12);
    }

    #[test]
    fn marginal_correct_for_non_unit_packets() {
        // Regression: the queueing term of D'(f) must NOT be divided by
        // the packet length. With C = 10 Mb/s, L = 1000 bits, τ = 2 ms at
        // 98% utilization the queueing term (C/(C−f)² = 2.5e-4) dominates
        // the propagation term (τ/L = 2e-6) by two orders of magnitude.
        let m = Mm1::new(10_000_000.0, 0.002, 1000.0);
        let f = 9_800_000.0;
        let queueing = 1e7 / (2e5f64 * 2e5);
        let expect = queueing + 0.002 / 1000.0;
        let got = m.marginal_delay(f);
        assert!((got - expect).abs() / expect < 1e-9, "got {got}, want {expect}");
        assert!(got > 100.0 * m.marginal_delay(0.0));
    }

    #[test]
    fn marginal_matches_derivative_non_unit_packets() {
        let m = Mm1::new(10_000_000.0, 0.002, 1000.0);
        for &f in &[1e6, 5e6, 9e6, 9.8e6] {
            let h = 1.0;
            let num = (m.rate_delay(f + h) - m.rate_delay(f - h)) / (2.0 * h);
            let ana = m.marginal_delay(f);
            assert!((num - ana).abs() / ana < 1e-4, "f={f}: {num} vs {ana}");
        }
    }

    #[test]
    fn marginal_continuous_at_cutoff_non_unit_packets() {
        let m = Mm1::new(10_000_000.0, 0.002, 1000.0);
        let fc = 1e7 * 0.99;
        let lo = m.marginal_delay(fc - 1e-3);
        let hi = m.marginal_delay(fc + 1e-3);
        assert!((lo - hi).abs() / lo < 1e-6, "{lo} vs {hi}");
    }

    #[test]
    fn negative_flow_clamped() {
        let model = m();
        assert_eq!(model.packet_delay(-5.0), model.packet_delay(0.0));
        assert_eq!(model.rate_delay(-5.0), 0.0);
    }
}
