//! Input traffic: the matrix `r = {r_ij}` of expected traffic (bits/s)
//! entering the network at router `i` destined for router `j` (§2.1).

use crate::error::NetError;
use crate::graph::Topology;
use crate::ids::NodeId;
use serde::{Deserialize, Serialize};

/// A single source-destination commodity with an offered rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Entry router `i`.
    pub src: NodeId,
    /// Destination router `j`.
    pub dst: NodeId,
    /// Offered rate `r_ij` in bits/second.
    pub rate: f64,
}

impl Flow {
    /// Construct a flow.
    pub fn new(src: NodeId, dst: NodeId, rate: f64) -> Self {
        Flow { src, dst, rate }
    }
}

/// Sparse matrix of offered rates (per-source adjacency sorted by
/// destination), plus the flow list it was built from (kept for per-flow
/// reporting, matching the paper's figures which plot *per-flow* average
/// delays against flow ids). Dense `n × n` storage was dropped when the
/// generator layer pushed `n` past 10k routers: 10k² f64 rates is 800 MB
/// per matrix, while real traffic matrices at that scale are sparse.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficMatrix {
    n: usize,
    per_src: Vec<Vec<(NodeId, f64)>>, // [src] → (dst, rate) sorted by dst
    flows: Vec<Flow>,
}

impl TrafficMatrix {
    /// Empty matrix for an `n`-node network.
    pub fn empty(n: usize) -> Self {
        TrafficMatrix { n, per_src: vec![Vec::new(); n], flows: Vec::new() }
    }

    /// Build from a flow list, validating against a topology.
    pub fn from_flows(topo: &Topology, flows: &[Flow]) -> Result<Self, NetError> {
        let mut m = TrafficMatrix::empty(topo.node_count());
        for f in flows {
            m.add_flow(topo, *f)?;
        }
        Ok(m)
    }

    /// Add one flow, accumulating its rate into the matrix.
    pub fn add_flow(&mut self, topo: &Topology, f: Flow) -> Result<(), NetError> {
        if f.src.index() >= topo.node_count() {
            return Err(NetError::UnknownNode(f.src));
        }
        if f.dst.index() >= topo.node_count() {
            return Err(NetError::UnknownNode(f.dst));
        }
        if f.src == f.dst {
            return Err(NetError::BadTraffic {
                src: f.src,
                dst: f.dst,
                what: "source equals destination",
            });
        }
        if !(f.rate.is_finite() && f.rate >= 0.0) {
            return Err(NetError::BadTraffic {
                src: f.src,
                dst: f.dst,
                what: "rate must be non-negative and finite",
            });
        }
        let row = &mut self.per_src[f.src.index()];
        match row.binary_search_by_key(&f.dst, |&(d, _)| d) {
            Ok(pos) => row[pos].1 += f.rate,
            Err(pos) => row.insert(pos, (f.dst, f.rate)),
        }
        self.flows.push(f);
        Ok(())
    }

    /// Offered rate `r_ij`.
    #[inline]
    pub fn rate(&self, src: NodeId, dst: NodeId) -> f64 {
        let row = &self.per_src[src.index()];
        match row.binary_search_by_key(&dst, |&(d, _)| d) {
            Ok(pos) => row[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Number of routers the matrix is sized for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The flows this matrix was built from, in insertion order (the
    /// paper's "flow ID" axis).
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Total offered load in bits/s.
    pub fn total_rate(&self) -> f64 {
        self.per_src.iter().flat_map(|row| row.iter().map(|&(_, r)| r)).sum()
    }

    /// Destinations that receive any traffic, ascending. Routing work is
    /// per *active* destination (§4.2: "the heuristics are run for each
    /// active destination").
    pub fn active_destinations(&self) -> Vec<NodeId> {
        let mut active = vec![false; self.n];
        for row in &self.per_src {
            for &(dst, rate) in row {
                if rate > 0.0 {
                    active[dst.index()] = true;
                }
            }
        }
        (0..self.n).filter(|&j| active[j]).map(|j| NodeId(j as u32)).collect()
    }

    /// Scale every rate by `factor` (used by load sweeps / dynamic
    /// scenarios).
    pub fn scaled(&self, factor: f64) -> TrafficMatrix {
        TrafficMatrix {
            n: self.n,
            per_src: self
                .per_src
                .iter()
                .map(|row| row.iter().map(|&(d, r)| (d, r * factor)).collect())
                .collect(),
            flows: self.flows.iter().map(|f| Flow::new(f.src, f.dst, f.rate * factor)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TopologyBuilder;

    fn topo3() -> Topology {
        let t = TopologyBuilder::new().nodes(3);
        t.bidi(NodeId(0), NodeId(1), 1e7, 0.001)
            .bidi(NodeId(1), NodeId(2), 1e7, 0.001)
            .build()
            .unwrap()
    }

    #[test]
    fn builds_from_flows() {
        let t = topo3();
        let m = TrafficMatrix::from_flows(
            &t,
            &[Flow::new(NodeId(0), NodeId(2), 1e6), Flow::new(NodeId(2), NodeId(0), 5e5)],
        )
        .unwrap();
        assert_eq!(m.rate(NodeId(0), NodeId(2)), 1e6);
        assert_eq!(m.rate(NodeId(2), NodeId(0)), 5e5);
        assert_eq!(m.rate(NodeId(0), NodeId(1)), 0.0);
        assert_eq!(m.total_rate(), 1.5e6);
        assert_eq!(m.flows().len(), 2);
    }

    #[test]
    fn accumulates_duplicate_pairs() {
        let t = topo3();
        let mut m = TrafficMatrix::empty(3);
        m.add_flow(&t, Flow::new(NodeId(0), NodeId(2), 1e6)).unwrap();
        m.add_flow(&t, Flow::new(NodeId(0), NodeId(2), 1e6)).unwrap();
        assert_eq!(m.rate(NodeId(0), NodeId(2)), 2e6);
    }

    #[test]
    fn rejects_self_traffic() {
        let t = topo3();
        let err =
            TrafficMatrix::from_flows(&t, &[Flow::new(NodeId(1), NodeId(1), 1.0)]).unwrap_err();
        assert!(matches!(err, NetError::BadTraffic { .. }));
    }

    #[test]
    fn rejects_negative_rate() {
        let t = topo3();
        let err =
            TrafficMatrix::from_flows(&t, &[Flow::new(NodeId(0), NodeId(1), -1.0)]).unwrap_err();
        assert!(matches!(err, NetError::BadTraffic { .. }));
    }

    #[test]
    fn rejects_unknown_node() {
        let t = topo3();
        let err =
            TrafficMatrix::from_flows(&t, &[Flow::new(NodeId(0), NodeId(9), 1.0)]).unwrap_err();
        assert_eq!(err, NetError::UnknownNode(NodeId(9)));
    }

    #[test]
    fn active_destinations_sorted() {
        let t = topo3();
        let m = TrafficMatrix::from_flows(
            &t,
            &[Flow::new(NodeId(0), NodeId(2), 1.0), Flow::new(NodeId(2), NodeId(1), 1.0)],
        )
        .unwrap();
        assert_eq!(m.active_destinations(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn scaling() {
        let t = topo3();
        let m = TrafficMatrix::from_flows(&t, &[Flow::new(NodeId(0), NodeId(2), 2.0)]).unwrap();
        let s = m.scaled(1.5);
        assert_eq!(s.rate(NodeId(0), NodeId(2)), 3.0);
        assert_eq!(s.flows()[0].rate, 3.0);
    }
}
