//! Seeded internet-scale topology and traffic generators (ROADMAP item 2).
//!
//! The paper evaluates MPDA on CAIRN (8 routers) and NET1 (~20); this
//! module generates the topologies needed to test the scaling story —
//! fat-trees (k = 4..32, up to ~9.5k routers), Barabási–Albert
//! scale-free graphs, and two-tier ISP backbone+access networks — plus
//! traffic-matrix generators (gravity model, elephant/mice mixes,
//! flash-crowd schedules). Everything is seeded and deterministic: the
//! same `(parameters, seed)` pair always yields a byte-identical
//! topology and flow list (pinned by `tests/gen_proptest.rs`).
//!
//! Link capacities stay at the paper's evaluation capacity
//! ([`EVAL_CAPACITY`], 10 Mb/s) and propagation delays at the CAIRN
//! millisecond scale, so generated networks are "the paper's network,
//! scaled up" rather than a new parameter regime.

use crate::graph::{Topology, TopologyBuilder};
use crate::ids::NodeId;
use crate::topo::EVAL_CAPACITY;
use crate::traffic::Flow;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Propagation delay of host/access links (matches CAIRN's LOCAL links).
pub const DELAY_ACCESS: f64 = 0.0005;
/// Propagation delay of intra-pod / metro links.
pub const DELAY_METRO: f64 = 0.002;
/// Propagation delay of core / wide-area links (matches CAIRN's
/// transatlantic scale).
pub const DELAY_CORE: f64 = 0.003;

/// Closed-form node count of a `k`-ary fat-tree: `k³/4` hosts plus
/// `5k²/4` switches (`(k/2)²` core + `k²/2` aggregation + `k²/2` edge).
pub fn fat_tree_nodes(k: usize) -> usize {
    k * k * k / 4 + 5 * k * k / 4
}

/// Closed-form count of physical (bidirectional) links in a `k`-ary
/// fat-tree: `3k³/4` — `k³/4` each for core↔agg, agg↔edge, edge↔host.
pub fn fat_tree_physical_links(k: usize) -> usize {
    3 * k * k * k / 4
}

/// `k`-ary fat-tree (Al-Fares et al. wiring): `k` pods of `k/2` edge and
/// `k/2` aggregation switches, `(k/2)²` core switches, `k/2` hosts per
/// edge switch. `k` must be even and in `4..=32` (k = 32 ≈ 9.5k nodes).
///
/// Node order (stable, index-computable): core `(k/2)²`, then per pod
/// its aggregation switches, then its edge switches, then all hosts.
/// The wiring is fully determined by `k` — no randomness.
pub fn fat_tree(k: usize) -> Topology {
    assert!(
        (4..=32).contains(&k) && k.is_multiple_of(2),
        "fat-tree arity must be even and in 4..=32"
    );
    let half = k / 2;
    let n_core = half * half;
    let n_agg = k * half;
    let n_edge = k * half;
    let core = |i: usize, j: usize| NodeId((i * half + j) as u32);
    let agg = |pod: usize, a: usize| NodeId((n_core + pod * half + a) as u32);
    let edge = |pod: usize, e: usize| NodeId((n_core + n_agg + pod * half + e) as u32);
    let host = |pod: usize, e: usize, h: usize| {
        NodeId((n_core + n_agg + n_edge + (pod * half + e) * half + h) as u32)
    };

    let mut b = TopologyBuilder::new();
    for i in 0..half {
        for j in 0..half {
            b.add_node(format!("core{i}_{j}"));
        }
    }
    for pod in 0..k {
        for a in 0..half {
            b.add_node(format!("agg{pod}_{a}"));
        }
    }
    for pod in 0..k {
        for e in 0..half {
            b.add_node(format!("edge{pod}_{e}"));
        }
    }
    for pod in 0..k {
        for e in 0..half {
            for h in 0..half {
                b.add_node(format!("host{pod}_{e}_{h}"));
            }
        }
    }
    for pod in 0..k {
        for a in 0..half {
            // Aggregation switch `a` uplinks to core row `a` (one core
            // switch per column), giving every core switch one link per
            // pod and overall core degree exactly `k`.
            for j in 0..half {
                b = b.bidi(agg(pod, a), core(a, j), EVAL_CAPACITY, DELAY_CORE);
            }
            for e in 0..half {
                b = b.bidi(agg(pod, a), edge(pod, e), EVAL_CAPACITY, DELAY_METRO);
            }
        }
        for e in 0..half {
            for h in 0..half {
                b = b.bidi(edge(pod, e), host(pod, e, h), EVAL_CAPACITY, DELAY_ACCESS);
            }
        }
    }
    b.build().expect("fat-tree wiring is valid by construction")
}

/// Hosts of a fat-tree built by [`fat_tree`], ascending — the natural
/// sources/destinations for traffic matrices.
pub fn fat_tree_hosts(k: usize) -> Vec<NodeId> {
    let switches = 5 * k * k / 4;
    (switches..fat_tree_nodes(k)).map(|i| NodeId(i as u32)).collect()
}

/// Barabási–Albert scale-free graph: start from a complete graph on
/// `m + 1` nodes, then attach each new node to `m` distinct existing
/// nodes chosen with probability proportional to their degree. Minimum
/// degree is `m`; a few hubs collect much higher degree, mimicking
/// AS-level internet topologies.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Topology {
    assert!(m >= 1 && n > m + 1, "barabasi_albert needs n > m + 1 and m >= 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    // `targets` holds each node id once per incident edge, so a uniform
    // draw from it is exactly degree-proportional sampling.
    let mut targets: Vec<u32> = Vec::with_capacity(2 * n * m);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let m0 = m + 1;
    for a in 0..m0 as u32 {
        for bb in (a + 1)..m0 as u32 {
            edges.push((a, bb));
            targets.push(a);
            targets.push(bb);
        }
    }
    let mut picked: Vec<u32> = Vec::with_capacity(m);
    for i in m0 as u32..n as u32 {
        picked.clear();
        let mut guard = 0usize;
        while picked.len() < m && guard < 10_000 {
            guard += 1;
            let t = targets[rng.gen_range(0..targets.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        // The guard only trips in degenerate parameterizations; fall
        // back to the lowest-id nodes not yet picked so the graph stays
        // connected and min-degree holds.
        let mut fill = 0u32;
        while picked.len() < m {
            if !picked.contains(&fill) {
                picked.push(fill);
            }
            fill += 1;
        }
        for &t in &picked {
            edges.push((t, i));
            targets.push(t);
            targets.push(i);
        }
    }
    let mut b = TopologyBuilder::new().nodes(n);
    for (x, y) in edges {
        b = b.bidi(NodeId(x), NodeId(y), EVAL_CAPACITY, DELAY_METRO);
    }
    b.build().expect("BA graph is valid by construction")
}

/// Two-tier ISP topology: a `backbone`-node wide-area core (ring plus
/// seeded random chords, average backbone degree ≈ 4) with `access_per`
/// access routers per backbone node, each dual-homed to its own
/// backbone router and the next one around the ring (so access traffic
/// always has two loop-free exits — the multipath case MPDA targets).
///
/// Node order: backbone `0..backbone`, then access routers grouped by
/// their primary backbone node.
pub fn two_tier_isp(backbone: usize, access_per: usize, seed: u64) -> Topology {
    assert!(backbone >= 3, "two_tier_isp needs at least 3 backbone nodes");
    let mut rng = SmallRng::seed_from_u64(seed);
    let bb = backbone as u32;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for i in 0..bb {
        edges.push((i.min((i + 1) % bb), i.max((i + 1) % bb)));
    }
    // Chords up to average backbone degree ~4 (ring contributes 2).
    let target = backbone * 2;
    let mut guard = 0usize;
    while edges.len() < target && guard < 100 * target {
        guard += 1;
        let a = rng.gen_range(0..bb);
        let c = rng.gen_range(0..bb);
        if a == c {
            continue;
        }
        let (a, c) = (a.min(c), a.max(c));
        if edges.contains(&(a, c)) {
            continue;
        }
        edges.push((a, c));
    }
    let mut b = TopologyBuilder::new();
    for i in 0..backbone {
        b.add_node(format!("bb{i}"));
    }
    for i in 0..backbone {
        for a in 0..access_per {
            b.add_node(format!("acc{i}_{a}"));
        }
    }
    for (x, y) in edges {
        b = b.bidi(NodeId(x), NodeId(y), EVAL_CAPACITY, DELAY_CORE);
    }
    for i in 0..backbone {
        for a in 0..access_per {
            let acc = NodeId((backbone + i * access_per + a) as u32);
            b = b.bidi(acc, NodeId(i as u32), EVAL_CAPACITY, DELAY_ACCESS);
            b = b.bidi(acc, NodeId(((i + 1) % backbone) as u32), EVAL_CAPACITY, DELAY_METRO);
        }
    }
    b.build().expect("two-tier ISP wiring is valid by construction")
}

/// Gravity-model traffic: each node gets a Pareto-distributed mass and
/// every source originates `flows_per_src` flows whose destinations are
/// drawn mass-proportionally, with rate `∝ mass(src) · mass(dst)`,
/// rescaled so the whole matrix offers exactly `total_rate` bits/s.
/// With `nodes` restricted (e.g. [`fat_tree_hosts`]) only those nodes
/// send or receive. `flows_per_src · |nodes|` can reach millions.
pub fn gravity_flows(
    nodes: &[NodeId],
    flows_per_src: usize,
    total_rate: f64,
    seed: u64,
) -> Vec<Flow> {
    assert!(nodes.len() >= 2, "gravity model needs at least two nodes");
    assert!(total_rate.is_finite() && total_rate > 0.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    // Pareto(α = 1.5) masses: heavy-tailed like real PoP fan-in.
    let masses: Vec<f64> =
        (0..nodes.len()).map(|_| (1.0 - rng.gen::<f64>() * 0.999_999).powf(-1.0 / 1.5)).collect();
    let mut cum: Vec<f64> = Vec::with_capacity(masses.len());
    let mut acc = 0.0;
    for &m in &masses {
        acc += m;
        cum.push(acc);
    }
    let total_mass = acc;
    let mut flows: Vec<Flow> = Vec::with_capacity(nodes.len() * flows_per_src);
    let mut raw_total = 0.0;
    for (si, &src) in nodes.iter().enumerate() {
        for _ in 0..flows_per_src {
            // Mass-weighted destination draw; re-draw self-pairs.
            let mut di = si;
            let mut guard = 0usize;
            while di == si && guard < 1_000 {
                guard += 1;
                let x = rng.gen::<f64>() * total_mass;
                di = cum.partition_point(|&c| c <= x).min(nodes.len() - 1);
            }
            if di == si {
                di = (si + 1) % nodes.len();
            }
            let rate = masses[si] * masses[di];
            raw_total += rate;
            flows.push(Flow::new(src, nodes[di], rate));
        }
    }
    let scale = total_rate / raw_total;
    for f in &mut flows {
        f.rate *= scale;
    }
    flows
}

/// Elephant/mice mix: `num_flows` flows over uniformly random distinct
/// `(src, dst)` pairs where the first ~10% ("elephants") share
/// `elephant_share` of `total_rate` and the remaining mice split the
/// rest — the canonical heavy-tail flow-size mix.
pub fn elephant_mice_flows(
    nodes: &[NodeId],
    num_flows: usize,
    total_rate: f64,
    elephant_share: f64,
    seed: u64,
) -> Vec<Flow> {
    assert!(nodes.len() >= 2 && num_flows >= 1);
    assert!((0.0..=1.0).contains(&elephant_share));
    assert!(total_rate.is_finite() && total_rate > 0.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_elephant = (num_flows / 10).max(1).min(num_flows);
    let n_mice = num_flows - n_elephant;
    let elephant_rate = total_rate * elephant_share / n_elephant as f64;
    let mice_rate =
        if n_mice == 0 { 0.0 } else { total_rate * (1.0 - elephant_share) / n_mice as f64 };
    let mut flows = Vec::with_capacity(num_flows);
    for i in 0..num_flows {
        let si = rng.gen_range(0..nodes.len());
        let mut di = rng.gen_range(0..nodes.len());
        if di == si {
            di = (di + 1) % nodes.len();
        }
        let rate = if i < n_elephant { elephant_rate } else { mice_rate };
        flows.push(Flow::new(nodes[si], nodes[di], rate));
    }
    flows
}

/// Flash-crowd schedule: every flow destined to `hot_dst` jumps to
/// `multiplier ×` its base rate at `t_start` and reverts at `t_end`.
/// Returns `(time, flow_index, new_rate)` triples sorted by time —
/// `mdr-sim`'s `Scenario::from_rate_schedule` converts them into
/// scenario events (kept as plain tuples here so `mdr-net` stays
/// independent of the simulator).
pub fn flash_crowd_schedule(
    flows: &[Flow],
    hot_dst: NodeId,
    t_start: f64,
    t_end: f64,
    multiplier: f64,
) -> Vec<(f64, usize, f64)> {
    assert!(t_start >= 0.0 && t_end > t_start, "flash crowd needs 0 <= t_start < t_end");
    assert!(multiplier.is_finite() && multiplier >= 0.0);
    let mut sched = Vec::new();
    for (i, f) in flows.iter().enumerate() {
        if f.dst == hot_dst {
            sched.push((t_start, i, f.rate * multiplier));
        }
    }
    for (i, f) in flows.iter().enumerate() {
        if f.dst == hot_dst {
            sched.push((t_end, i, f.rate));
        }
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_k4_counts_match_closed_form() {
        let t = fat_tree(4);
        assert_eq!(t.node_count(), fat_tree_nodes(4));
        assert_eq!(t.node_count(), 36); // 16 hosts + 20 switches
        assert_eq!(t.link_count(), 2 * fat_tree_physical_links(4));
        assert!(t.is_connected());
        assert_eq!(fat_tree_hosts(4).len(), 16);
    }

    #[test]
    fn fat_tree_degrees() {
        let t = fat_tree(4);
        let hosts = fat_tree_hosts(4);
        for n in t.nodes() {
            let d = t.degree(n);
            if hosts.contains(&n) {
                assert_eq!(d, 1, "host {n:?}");
            } else {
                assert_eq!(d, 4, "switch {n:?} must have degree k");
            }
        }
    }

    #[test]
    fn ba_is_connected_with_min_degree() {
        let t = barabasi_albert(200, 2, 42);
        assert_eq!(t.node_count(), 200);
        assert!(t.is_connected());
        for n in t.nodes() {
            assert!(t.degree(n) >= 2);
        }
    }

    #[test]
    fn two_tier_dual_homing() {
        let t = two_tier_isp(10, 4, 7);
        assert_eq!(t.node_count(), 50);
        assert!(t.is_connected());
        for i in 10..50 {
            assert_eq!(t.degree(NodeId(i)), 2, "access routers are dual-homed");
        }
    }

    #[test]
    fn gravity_total_rate_exact() {
        let t = barabasi_albert(50, 2, 1);
        let nodes: Vec<NodeId> = t.nodes().collect();
        let flows = gravity_flows(&nodes, 3, 5e6, 9);
        assert_eq!(flows.len(), 150);
        let total: f64 = flows.iter().map(|f| f.rate).sum();
        assert!((total - 5e6).abs() < 1e-3);
        assert!(flows.iter().all(|f| f.src != f.dst && f.rate > 0.0));
    }

    #[test]
    fn elephants_carry_their_share() {
        let nodes: Vec<NodeId> = (0..20).map(NodeId).collect();
        let flows = elephant_mice_flows(&nodes, 100, 1e6, 0.9, 3);
        assert_eq!(flows.len(), 100);
        let elephants: f64 = flows[..10].iter().map(|f| f.rate).sum();
        assert!((elephants - 9e5).abs() < 1e-6);
        let total: f64 = flows.iter().map(|f| f.rate).sum();
        assert!((total - 1e6).abs() < 1e-6);
    }

    #[test]
    fn flash_crowd_targets_only_hot_destination() {
        let nodes: Vec<NodeId> = (0..10).map(NodeId).collect();
        let flows = elephant_mice_flows(&nodes, 40, 1e6, 0.8, 5);
        let hot = flows[0].dst;
        let sched = flash_crowd_schedule(&flows, hot, 10.0, 20.0, 4.0);
        assert!(!sched.is_empty());
        assert_eq!(sched.len() % 2, 0);
        for &(at, idx, rate) in &sched {
            assert_eq!(flows[idx].dst, hot);
            if at < 15.0 {
                assert!((rate - flows[idx].rate * 4.0).abs() < 1e-9);
            } else {
                assert!((rate - flows[idx].rate).abs() < 1e-9);
            }
        }
    }
}
