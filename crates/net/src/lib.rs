//! # mdr-net — network model substrate
//!
//! This crate provides the network model underlying the reproduction of
//! *"A Simple Approximation to Minimum-Delay Routing"* (Vutukury &
//! Garcia-Luna-Aceves, SIGCOMM 1999):
//!
//! * [`Topology`] — a computer network `G = (N, L)` of routers and
//!   bidirectional links (modelled as pairs of directed links, possibly
//!   with different costs per direction, exactly as in §2.1 of the paper);
//! * [`delay`] — the M/M/1 link delay model of Eq. (24) and its marginal
//!   (incremental) delay, which the paper uses as the link cost;
//! * [`TrafficMatrix`] — the expected input traffic `r_ij` entering the
//!   network at router `i` destined for router `j`;
//! * [`topo`] — the two evaluation topologies from Fig. 8 (CAIRN and
//!   NET1) plus synthetic generators used by tests and ablations.
//!
//! Everything here is deterministic and allocation-conscious: topologies
//! are immutable once built, adjacency is stored in sorted vectors so all
//! iteration orders are reproducible across runs.

// No unsafe anywhere: the whole workspace is plain safe Rust, and
// `mdr-lint` verifies every crate root carries this attribute.
#![forbid(unsafe_code)]

pub mod delay;
pub mod error;
pub mod gen;
pub mod graph;
pub mod ids;
pub mod io;
pub mod link;
pub mod topo;
pub mod traffic;

pub use delay::{LinkDelayModel, Mm1};
pub use error::NetError;
pub use graph::{Topology, TopologyBuilder};
pub use ids::{LinkId, NodeId};
pub use io::{FlowSpec, LinkSpec, NetworkSpec, SpecError};
pub use link::{Link, LinkCost, INFINITE_COST};
pub use traffic::{Flow, TrafficMatrix};
