//! Directed links and link costs.

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};

/// Link costs are marginal delays (seconds per unit of added flow), i.e.
/// `D'_ik(f_ik)` in the paper's notation. They are strictly positive for
/// any operational link.
pub type LinkCost = f64;

/// Cost representing an unreachable/failed link. Large but finite so
/// arithmetic (`d + l`) never produces NaN, and still orders after every
/// legitimate path cost.
pub const INFINITE_COST: LinkCost = 1.0e18;

/// A directed link `(from, to)` with physical characteristics.
///
/// Capacity is in bits/second, propagation delay in seconds. The paper's
/// delay function `D_ik` (Eq. 24) depends on the flow through the link and
/// on these two characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Transmitting router (the *head* `h` in LSU triplets `[h, t, d]`).
    pub from: NodeId,
    /// Receiving router (the *tail* `t`).
    pub to: NodeId,
    /// Capacity `C_ik` in bits per second.
    pub capacity: f64,
    /// Propagation delay `τ_ik` in seconds.
    pub prop_delay: f64,
}

impl Link {
    /// Create a link, without validation (validation happens in
    /// [`crate::TopologyBuilder`]).
    pub fn new(from: NodeId, to: NodeId, capacity: f64, prop_delay: f64) -> Self {
        Link { from, to, capacity, prop_delay }
    }

    /// Transmission time of a packet of `bits` bits on an idle link,
    /// excluding queueing: serialization + propagation.
    pub fn idle_transit_time(&self, bits: f64) -> f64 {
        bits / self.capacity + self.prop_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_transit_time_combines_serialization_and_propagation() {
        let l = Link::new(NodeId(0), NodeId(1), 10_000_000.0, 0.002);
        // 10_000 bits at 10 Mb/s = 1 ms serialization + 2 ms propagation.
        let t = l.idle_transit_time(10_000.0);
        assert!((t - 0.003).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn infinite_cost_is_finite_and_huge() {
        assert!(INFINITE_COST.is_finite());
        assert!(INFINITE_COST > 1e15);
        // Adding two infinite costs must not overflow to inf.
        assert!((INFINITE_COST + INFINITE_COST).is_finite());
    }
}
