//! Evaluation topologies (Fig. 8 of the paper) and synthetic generators.
//!
//! ## CAIRN
//!
//! CAIRN was a real DARPA research network. The paper uses only its
//! *connectivity* and substitutes its own capacities and propagation
//! delays ("its topology as used differs from the real network in the
//! capacities and propagation delays", §5), capping links at 10 Mb/s.
//! The exact 1999 link list is not recoverable from the paper text (the
//! figure is a bitmap), so [`cairn`] reconstructs a CAIRN-like topology
//! over the site names legible in Fig. 8, with the sparse west-coast /
//! east-coast structure of the real network, a few cross-country links,
//! and one transatlantic link (UCL). All flow endpoints used in §5 are
//! present. This substitution preserves what the experiments rely on:
//! moderate connectivity with a handful of alternate paths between the
//! measured source-destination pairs.
//!
//! ## NET1
//!
//! NET1 is the paper's contrived topology: 10 nodes, "diameter four and
//! node degrees between 3 and 5". The figure's edge list is likewise not
//! legible, so [`net1`] is a reconstruction meeting those published
//! constraints exactly (verified by unit tests): two 4-cliques bridged by
//! a 2-node waist, giving degrees 3–5 and hop diameter exactly 4, high
//! enough connectivity for multipaths, and few one-hop paths.

use crate::graph::{Topology, TopologyBuilder};
use crate::ids::NodeId;
use crate::traffic::Flow;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Default link capacity for the evaluation topologies: 10 Mb/s (§5:
/// "We restricted the link capacities to a maximum of 10Mbs").
pub const EVAL_CAPACITY: f64 = 10_000_000.0;

/// Build the CAIRN-like evaluation topology (26 sites, 34 physical
/// links, 10 Mb/s everywhere; short intra-coast propagation delays,
/// longer cross-country and transatlantic). Propagation delays are
/// scaled down so queueing dominates at the evaluation loads, matching
/// the few-millisecond delay scale of the paper's Figs. 9–14 (the paper
/// likewise substituted its own delays for CAIRN's real ones).
pub fn cairn() -> Topology {
    let mut b = TopologyBuilder::new();
    let id = |b: &mut TopologyBuilder, name: &str| b.add_node(name);
    // West coast.
    let ucsc = id(&mut b, "ucsc");
    let sri = id(&mut b, "sri");
    let parc = id(&mut b, "parc");
    let ucb = id(&mut b, "ucb");
    let lbl = id(&mut b, "lbl");
    let nasa = id(&mut b, "nasa");
    let ucla = id(&mut b, "ucla");
    let isi = id(&mut b, "isi");
    let sdsc = id(&mut b, "sdsc");
    let csco_w = id(&mut b, "csco-w");
    let sac = id(&mut b, "sac");
    // East coast + midwest.
    let darpa = id(&mut b, "darpa");
    let mci_r = id(&mut b, "mci-r");
    let isi_e = id(&mut b, "isi-e");
    let nrl = id(&mut b, "nrl-v6");
    let udel = id(&mut b, "udel");
    let bell = id(&mut b, "bell");
    let bbn = id(&mut b, "bbn");
    let mit = id(&mut b, "mit");
    let netstar = id(&mut b, "netstar");
    let anl = id(&mut b, "anl");
    let tis = id(&mut b, "tis");
    let csco_e = id(&mut b, "csco-e");
    let tioc = id(&mut b, "tioc");
    let ucl = id(&mut b, "ucl");
    let cmu = id(&mut b, "cmu");

    const C: f64 = EVAL_CAPACITY;
    const LOCAL: f64 = 0.0005; // 0.5 ms intra-coast
    const XC: f64 = 0.002; // 2 ms cross-country
    const TA: f64 = 0.003; // 3 ms transatlantic

    b
        // West-coast mesh.
        .bidi(ucsc, sri, C, LOCAL)
        .bidi(sri, parc, C, LOCAL)
        .bidi(parc, ucb, C, LOCAL)
        .bidi(ucb, lbl, C, LOCAL)
        .bidi(lbl, sri, C, LOCAL)
        .bidi(sri, nasa, C, LOCAL)
        .bidi(nasa, ucla, C, LOCAL)
        .bidi(ucla, isi, C, LOCAL)
        .bidi(isi, sdsc, C, LOCAL)
        .bidi(sdsc, ucla, C, LOCAL)
        .bidi(isi, csco_w, C, LOCAL)
        .bidi(csco_w, sri, C, LOCAL)
        .bidi(sac, sdsc, C, LOCAL)
        .bidi(sac, isi, C, LOCAL)
        // Cross-country trunks.
        .bidi(isi, darpa, C, XC)
        .bidi(sri, mci_r, C, XC)
        // East-coast / midwest mesh.
        .bidi(mci_r, darpa, C, LOCAL)
        .bidi(darpa, isi_e, C, LOCAL)
        .bidi(isi_e, nrl, C, LOCAL)
        .bidi(nrl, darpa, C, LOCAL)
        .bidi(darpa, udel, C, LOCAL)
        .bidi(udel, bell, C, LOCAL)
        .bidi(bell, bbn, C, LOCAL)
        .bidi(bbn, mit, C, LOCAL)
        .bidi(mit, netstar, C, LOCAL)
        .bidi(netstar, anl, C, LOCAL)
        .bidi(anl, mci_r, C, LOCAL)
        .bidi(isi_e, tis, C, LOCAL)
        .bidi(tis, udel, C, LOCAL)
        .bidi(bbn, csco_e, C, LOCAL)
        .bidi(csco_e, mit, C, LOCAL)
        .bidi(tioc, darpa, C, LOCAL)
        .bidi(tioc, isi_e, C, LOCAL)
        .bidi(ucl, darpa, C, TA)
        .bidi(cmu, anl, C, LOCAL)
        .bidi(cmu, bell, C, LOCAL)
        .build()
        .expect("cairn topology is valid")
}

/// The CAIRN source-destination pairs of §5, in the paper's order:
/// (lbl, mci-r), (netstar, isi-e), (isi, darpa), (parc, sdsc),
/// (sri, mit), (tioc, sdsc), (mit, sri), (isi-e, netstar),
/// (sdsc, parc), (mci-r, tioc), (darpa, isi).
pub fn cairn_flow_pairs(t: &Topology) -> Vec<(NodeId, NodeId)> {
    let n = |s: &str| t.node_by_name(s).expect("cairn site exists");
    vec![
        (n("lbl"), n("mci-r")),
        (n("netstar"), n("isi-e")),
        (n("isi"), n("darpa")),
        (n("parc"), n("sdsc")),
        (n("sri"), n("mit")),
        (n("tioc"), n("sdsc")),
        (n("mit"), n("sri")),
        (n("isi-e"), n("netstar")),
        (n("sdsc"), n("parc")),
        (n("mci-r"), n("tioc")),
        (n("darpa"), n("isi")),
    ]
}

/// CAIRN flows at a given per-flow rate (bits/s).
pub fn cairn_flows(t: &Topology, rate: f64) -> Vec<Flow> {
    cairn_flow_pairs(t).into_iter().map(|(s, d)| Flow::new(s, d, rate)).collect()
}

/// Build NET1: 10 nodes, 18 physical links, degrees 3–5, hop diameter 4.
/// All links 10 Mb/s with 0.5 ms propagation delay.
pub fn net1() -> Topology {
    let b = TopologyBuilder::new().nodes(10);
    const C: f64 = EVAL_CAPACITY;
    const D: f64 = 0.0005;
    let n = |i: u32| NodeId(i);
    b
        // 4-clique {0,1,2,3}.
        .bidi(n(0), n(1), C, D)
        .bidi(n(0), n(2), C, D)
        .bidi(n(0), n(3), C, D)
        .bidi(n(1), n(2), C, D)
        .bidi(n(1), n(3), C, D)
        .bidi(n(2), n(3), C, D)
        // 4-clique {6,7,8,9}.
        .bidi(n(6), n(7), C, D)
        .bidi(n(6), n(8), C, D)
        .bidi(n(6), n(9), C, D)
        .bidi(n(7), n(8), C, D)
        .bidi(n(7), n(9), C, D)
        .bidi(n(8), n(9), C, D)
        // Waist {4, 5} bridging the cliques: parallel unequal paths
        // feed the waist from each side, giving the decision nodes
        // multiple loop-free successors of similar cost — the structure
        // multipath load balancing exploits and single-path routing
        // cannot.
        .bidi(n(2), n(4), C, D)
        .bidi(n(3), n(4), C, D)
        .bidi(n(4), n(5), C, D)
        .bidi(n(2), n(5), C, D)
        .bidi(n(5), n(6), C, D)
        .bidi(n(5), n(7), C, D)
        .build()
        .expect("net1 topology is valid")
}

/// NET1 source-destination pairs of §5: "(9,2), (8,3), (7,0), (6,1),
/// (5,8), (4,1), (3,8), (2,9), (1,6), (0,7)". The digits of two pairs
/// are garbled in the available paper text — `(4,1)` and `(2,9)` are
/// reconstructions consistent with each node appearing exactly once as a
/// source.
pub fn net1_flow_pairs() -> Vec<(NodeId, NodeId)> {
    [(9, 2), (8, 3), (7, 0), (6, 1), (5, 8), (4, 1), (3, 8), (2, 9), (1, 6), (0, 7)]
        .into_iter()
        .map(|(a, b)| (NodeId(a), NodeId(b)))
        .collect()
}

/// NET1 flows at a given per-flow rate (bits/s).
pub fn net1_flows(rate: f64) -> Vec<Flow> {
    net1_flow_pairs().into_iter().map(|(s, d)| Flow::new(s, d, rate)).collect()
}

/// A bidirectional ring of `n` nodes (used by protocol tests: the worst
/// case for convergence proofs since paths reach `n-1` hops).
pub fn ring(n: usize, capacity: f64, prop_delay: f64) -> Topology {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut b = TopologyBuilder::new().nodes(n);
    for i in 0..n {
        let j = (i + 1) % n;
        b = b.bidi(NodeId(i as u32), NodeId(j as u32), capacity, prop_delay);
    }
    b.build().expect("ring is valid")
}

/// A `w × h` grid (rich in equal-cost multipaths).
pub fn grid(w: usize, h: usize, capacity: f64, prop_delay: f64) -> Topology {
    assert!(w >= 1 && h >= 1 && w * h >= 2);
    let mut b = TopologyBuilder::new().nodes(w * h);
    let at = |x: usize, y: usize| NodeId((y * w + x) as u32);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b = b.bidi(at(x, y), at(x + 1, y), capacity, prop_delay);
            }
            if y + 1 < h {
                b = b.bidi(at(x, y), at(x, y + 1), capacity, prop_delay);
            }
        }
    }
    b.build().expect("grid is valid")
}

/// A random connected topology: a random spanning tree plus extra random
/// links until the average node degree reaches `avg_degree`.
/// Deterministic for a given `seed`.
pub fn random_connected(
    n: usize,
    avg_degree: f64,
    capacity: f64,
    prop_delay: f64,
    seed: u64,
) -> Topology {
    assert!(n >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // Random spanning tree: attach each node i>0 to a uniformly random
    // earlier node.
    for i in 1..n as u32 {
        let j = rng.gen_range(0..i);
        edges.push((j, i));
    }
    let target_links = ((avg_degree * n as f64) / 2.0).ceil() as usize;
    let mut guard = 0;
    while edges.len() < target_links && guard < 100 * target_links {
        guard += 1;
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let (a, b) = (a.min(b), a.max(b));
        if edges.contains(&(a, b)) {
            continue;
        }
        edges.push((a, b));
    }
    let mut builder = TopologyBuilder::new().nodes(n);
    for (a, b) in edges {
        builder = builder.bidi(NodeId(a), NodeId(b), capacity, prop_delay);
    }
    builder.build().expect("random topology is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cairn_is_connected_and_moderately_sparse() {
        let t = cairn();
        assert_eq!(t.node_count(), 26);
        assert!(t.is_connected());
        let d = t.diameter().unwrap();
        assert!((5..=9).contains(&d), "diameter {d}");
        for n in t.nodes() {
            let deg = t.degree(n);
            assert!((1..=7).contains(&deg), "{} degree {deg}", t.name(n));
        }
    }

    #[test]
    fn cairn_flow_endpoints_exist_and_are_distinct() {
        let t = cairn();
        let pairs = cairn_flow_pairs(&t);
        assert_eq!(pairs.len(), 11);
        for (s, d) in pairs {
            assert_ne!(s, d);
        }
    }

    #[test]
    fn cairn_capacity_capped_at_10mbs() {
        let t = cairn();
        for l in t.links() {
            assert!(l.capacity <= EVAL_CAPACITY);
        }
    }

    #[test]
    fn net1_meets_paper_constraints() {
        let t = net1();
        assert_eq!(t.node_count(), 10);
        assert!(t.is_connected());
        // "The diameter of NET1 is four and the nodes have degrees
        // between 3 and 5."
        assert_eq!(t.diameter(), Some(4));
        for n in t.nodes() {
            let deg = t.degree(n);
            assert!((3..=5).contains(&deg), "node {n} degree {deg}");
        }
    }

    #[test]
    fn net1_flows_each_source_once() {
        let pairs = net1_flow_pairs();
        assert_eq!(pairs.len(), 10);
        let mut sources: Vec<u32> = pairs.iter().map(|(s, _)| s.0).collect();
        sources.sort_unstable();
        assert_eq!(sources, (0..10).collect::<Vec<_>>());
        for (s, d) in pairs {
            assert_ne!(s, d);
        }
    }

    #[test]
    fn ring_and_grid_shapes() {
        let r = ring(5, 1e7, 0.001);
        assert_eq!(r.node_count(), 5);
        assert_eq!(r.link_count(), 10);
        assert_eq!(r.diameter(), Some(2));

        let g = grid(3, 3, 1e7, 0.001);
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.link_count(), 24);
        assert_eq!(g.diameter(), Some(4));
        assert_eq!(g.degree(NodeId(4)), 4); // center
        assert_eq!(g.degree(NodeId(0)), 2); // corner
    }

    #[test]
    fn random_connected_is_connected_and_deterministic() {
        let a = random_connected(20, 3.0, 1e7, 0.001, 42);
        let b = random_connected(20, 3.0, 1e7, 0.001, 42);
        assert!(a.is_connected());
        assert_eq!(a.link_count(), b.link_count());
        for (la, lb) in a.links().iter().zip(b.links()) {
            assert_eq!(la.from, lb.from);
            assert_eq!(la.to, lb.to);
        }
        let c = random_connected(20, 3.0, 1e7, 0.001, 43);
        // Different seed virtually surely differs somewhere.
        let same = a.link_count() == c.link_count()
            && a.links().iter().zip(c.links()).all(|(x, y)| x.from == y.from && x.to == y.to);
        assert!(!same);
    }

    #[test]
    fn random_connected_hits_target_degree() {
        let t = random_connected(30, 4.0, 1e7, 0.001, 7);
        let avg = t.link_count() as f64 / t.node_count() as f64;
        // link_count counts directed links, so avg directed degree ≈ 4.
        assert!((3.5..=4.5).contains(&avg), "avg degree {avg}");
    }
}
