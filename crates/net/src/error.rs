//! Error type for network-model construction and queries.

use crate::ids::NodeId;
use std::fmt;

/// Errors raised while building or querying a [`crate::Topology`] or
/// [`crate::TrafficMatrix`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// A node id referenced a router that does not exist.
    UnknownNode(NodeId),
    /// A link was declared between a node and itself.
    SelfLoop(NodeId),
    /// The same directed link was declared twice.
    DuplicateLink(NodeId, NodeId),
    /// A link parameter was out of range (capacity/propagation delay must
    /// be positive and finite).
    BadLinkParameter { from: NodeId, to: NodeId, what: &'static str },
    /// A traffic entry was invalid (negative/non-finite rate, or
    /// source equal to destination).
    BadTraffic { src: NodeId, dst: NodeId, what: &'static str },
    /// The topology is not connected, but the operation requires it.
    Disconnected,
    /// The topology has no nodes.
    Empty,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::SelfLoop(n) => write!(f, "self loop at node {n}"),
            NetError::DuplicateLink(a, b) => write!(f, "duplicate link {a} -> {b}"),
            NetError::BadLinkParameter { from, to, what } => {
                write!(f, "bad link parameter on {from} -> {to}: {what}")
            }
            NetError::BadTraffic { src, dst, what } => {
                write!(f, "bad traffic entry {src} -> {dst}: {what}")
            }
            NetError::Disconnected => write!(f, "topology is not connected"),
            NetError::Empty => write!(f, "topology has no nodes"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetError::BadLinkParameter {
            from: NodeId(0),
            to: NodeId(1),
            what: "capacity must be positive",
        };
        let s = e.to_string();
        assert!(s.contains("0 -> 1"));
        assert!(s.contains("capacity"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(NetError::Disconnected);
        assert_eq!(e.to_string(), "topology is not connected");
    }
}
