//! Human-editable JSON interchange for topologies and traffic.
//!
//! Lets downstream users define experiments without writing Rust: a
//! network description file carries named nodes, physical
//! (bidirectional) links, and flows. Directed asymmetric links can be
//! expressed by setting `bidi: false` on an entry.
//!
//! ```json
//! {
//!   "nodes": ["a", "b", "c"],
//!   "links": [
//!     { "from": "a", "to": "b", "capacity_bps": 1e7, "prop_delay_s": 0.001 },
//!     { "from": "b", "to": "c", "capacity_bps": 1e7, "prop_delay_s": 0.002,
//!       "bidi": false }
//!   ],
//!   "flows": [ { "src": "a", "dst": "c", "rate_bps": 2e6 } ]
//! }
//! ```

use crate::error::NetError;
use crate::graph::{Topology, TopologyBuilder};
use crate::traffic::Flow;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A network description as serialized to/from JSON.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct NetworkSpec {
    /// Node names; the index in this list is the node's address.
    pub nodes: Vec<String>,
    /// Links between named nodes.
    pub links: Vec<LinkSpec>,
    /// Offered flows between named nodes.
    #[serde(default)]
    pub flows: Vec<FlowSpec>,
}

/// One link entry.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct LinkSpec {
    /// Name of the transmitting node.
    pub from: String,
    /// Name of the receiving node.
    pub to: String,
    /// Capacity in bits/second.
    pub capacity_bps: f64,
    /// Propagation delay in seconds.
    pub prop_delay_s: f64,
    /// Add the reverse direction too (default true).
    #[serde(default = "default_true")]
    pub bidi: bool,
}

/// One flow entry.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct FlowSpec {
    /// Source node name.
    pub src: String,
    /// Destination node name.
    pub dst: String,
    /// Offered rate in bits/second.
    pub rate_bps: f64,
}

fn default_true() -> bool {
    true
}

/// Errors loading a [`NetworkSpec`].
#[derive(Debug)]
pub enum SpecError {
    /// JSON syntax / shape problem.
    Json(serde_json::Error),
    /// A link or flow referenced an undeclared node name.
    UnknownName(String),
    /// The resulting topology was structurally invalid.
    Net(NetError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "invalid JSON: {e}"),
            SpecError::UnknownName(n) => write!(f, "unknown node name {n:?}"),
            SpecError::Net(e) => write!(f, "invalid network: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<serde_json::Error> for SpecError {
    fn from(e: serde_json::Error) -> Self {
        SpecError::Json(e)
    }
}

impl From<NetError> for SpecError {
    fn from(e: NetError) -> Self {
        SpecError::Net(e)
    }
}

impl NetworkSpec {
    /// Parse from JSON text.
    pub fn from_json(s: &str) -> Result<Self, SpecError> {
        Ok(serde_json::from_str(s)?)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Build the topology and flow list this spec describes.
    pub fn build(&self) -> Result<(Topology, Vec<Flow>), SpecError> {
        let mut b = TopologyBuilder::new();
        for name in &self.nodes {
            b.add_node(name.clone());
        }
        let lookup = |name: &str| {
            self.nodes
                .iter()
                .position(|n| n == name)
                .map(crate::ids::NodeId::from)
                .ok_or_else(|| SpecError::UnknownName(name.to_string()))
        };
        let mut builder = b;
        for l in &self.links {
            let from = lookup(&l.from)?;
            let to = lookup(&l.to)?;
            builder = if l.bidi {
                builder.bidi(from, to, l.capacity_bps, l.prop_delay_s)
            } else {
                builder.link(from, to, l.capacity_bps, l.prop_delay_s)
            };
        }
        let topo = builder.build()?;
        let mut flows = Vec::with_capacity(self.flows.len());
        for f in &self.flows {
            flows.push(Flow::new(lookup(&f.src)?, lookup(&f.dst)?, f.rate_bps));
        }
        Ok((topo, flows))
    }

    /// Describe an existing topology + flows as a spec (inverse of
    /// [`NetworkSpec::build`], modulo link ordering).
    pub fn describe(topo: &Topology, flows: &[Flow]) -> Self {
        let mut links: Vec<LinkSpec> = Vec::new();
        for l in topo.links() {
            // Emit each bidirectional pair once, as one `bidi` entry, if
            // the reverse exists with identical parameters.
            let rev = topo.link_between(l.to, l.from).map(|id| *topo.link(id));
            let symmetric = rev
                .map(|r| r.capacity == l.capacity && r.prop_delay == l.prop_delay)
                .unwrap_or(false);
            if symmetric && l.from > l.to {
                continue; // the partner entry covers this direction
            }
            links.push(LinkSpec {
                from: topo.name(l.from).to_string(),
                to: topo.name(l.to).to_string(),
                capacity_bps: l.capacity,
                prop_delay_s: l.prop_delay,
                bidi: symmetric,
            });
        }
        NetworkSpec {
            nodes: topo.nodes().map(|n| topo.name(n).to_string()).collect(),
            links,
            flows: flows
                .iter()
                .map(|f| FlowSpec {
                    src: topo.name(f.src).to_string(),
                    dst: topo.name(f.dst).to_string(),
                    rate_bps: f.rate,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    const SAMPLE: &str = r#"{
        "nodes": ["a", "b", "c"],
        "links": [
            { "from": "a", "to": "b", "capacity_bps": 1e7, "prop_delay_s": 0.001 },
            { "from": "b", "to": "c", "capacity_bps": 5e6, "prop_delay_s": 0.002, "bidi": false }
        ],
        "flows": [ { "src": "a", "dst": "c", "rate_bps": 2e6 } ]
    }"#;

    #[test]
    fn parse_and_build() {
        let spec = NetworkSpec::from_json(SAMPLE).unwrap();
        let (t, flows) = spec.build().unwrap();
        assert_eq!(t.node_count(), 3);
        // a-b bidi (2 directed) + b->c single = 3 directed links.
        assert_eq!(t.link_count(), 3);
        assert!(t.link_between(NodeId(0), NodeId(1)).is_some());
        assert!(t.link_between(NodeId(1), NodeId(0)).is_some());
        assert!(t.link_between(NodeId(2), NodeId(1)).is_none());
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].rate, 2e6);
    }

    #[test]
    fn unknown_name_rejected() {
        let bad = SAMPLE.replace("\"src\": \"a\"", "\"src\": \"zz\"");
        let spec = NetworkSpec::from_json(&bad).unwrap();
        assert!(matches!(spec.build(), Err(SpecError::UnknownName(_))));
    }

    #[test]
    fn invalid_json_rejected() {
        assert!(matches!(NetworkSpec::from_json("{"), Err(SpecError::Json(_))));
    }

    #[test]
    fn invalid_network_rejected() {
        let spec = NetworkSpec {
            nodes: vec!["a".into()],
            links: vec![LinkSpec {
                from: "a".into(),
                to: "a".into(),
                capacity_bps: 1e6,
                prop_delay_s: 0.0,
                bidi: true,
            }],
            flows: vec![],
        };
        assert!(matches!(spec.build(), Err(SpecError::Net(_))));
    }

    #[test]
    fn describe_roundtrips_cairn() {
        let t = crate::topo::cairn();
        let flows = crate::topo::cairn_flows(&t, 1e6);
        let spec = NetworkSpec::describe(&t, &flows);
        let (t2, flows2) = spec.build().unwrap();
        assert_eq!(t.node_count(), t2.node_count());
        assert_eq!(t.link_count(), t2.link_count());
        for l in t.links() {
            let id = t2
                .link_between(
                    t2.node_by_name(t.name(l.from)).unwrap(),
                    t2.node_by_name(t.name(l.to)).unwrap(),
                )
                .expect("link preserved");
            let l2 = t2.link(id);
            assert_eq!(l2.capacity, l.capacity);
            assert_eq!(l2.prop_delay, l.prop_delay);
        }
        assert_eq!(flows.len(), flows2.len());
    }

    #[test]
    fn json_text_roundtrip() {
        let spec = NetworkSpec::from_json(SAMPLE).unwrap();
        let again = NetworkSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn asymmetric_links_survive_describe() {
        let spec = NetworkSpec::from_json(SAMPLE).unwrap();
        let (t, flows) = spec.build().unwrap();
        let desc = NetworkSpec::describe(&t, &flows);
        let (t2, _) = desc.build().unwrap();
        assert_eq!(t2.link_count(), 3);
        assert!(t2.link_between(NodeId(2), NodeId(1)).is_none());
    }
}
