//! Property tests for the `mdr_net::gen` topology/traffic generators:
//! every generated topology is connected, fully bidirectional, and
//! within its family's degree bounds; the same seed yields a
//! byte-identical topology and traffic matrix; fat-tree node/link
//! counts match the closed-form `k³/4` formulas.

use mdr_net::gen::{
    barabasi_albert, elephant_mice_flows, fat_tree, fat_tree_hosts, fat_tree_nodes,
    fat_tree_physical_links, flash_crowd_schedule, gravity_flows, two_tier_isp,
};
use mdr_net::{NodeId, Topology};
use proptest::prelude::*;

/// Every directed link must have its reverse present (the builder's
/// `bidi` guarantees this by construction; this pins it as an invariant
/// of the generator layer, which the MPDA adjacency model assumes).
fn assert_bidirectional(t: &Topology) {
    for (id, _) in t.links().iter().enumerate() {
        assert!(
            t.reverse(mdr_net::LinkId(id as u32)).is_some(),
            "link {id} has no reverse direction"
        );
    }
}

fn bytes(t: &Topology) -> String {
    serde_json::to_string(t).expect("topology serializes")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn fat_tree_matches_closed_forms(k in (2usize..9).prop_map(|h| 2 * h)) {
        let t = fat_tree(k);
        prop_assert_eq!(t.node_count(), fat_tree_nodes(k));
        prop_assert_eq!(t.node_count(), k * k * k / 4 + 5 * k * k / 4);
        prop_assert_eq!(t.link_count(), 2 * fat_tree_physical_links(k));
        prop_assert_eq!(t.link_count(), 2 * (3 * k * k * k / 4));
        prop_assert!(t.is_connected());
        assert_bidirectional(&t);
        // Exact degree bounds: hosts degree 1, every switch degree k.
        let hosts = fat_tree_hosts(k);
        prop_assert_eq!(hosts.len(), k * k * k / 4);
        for n in t.nodes() {
            let want = if n.index() >= 5 * k * k / 4 { 1 } else { k };
            prop_assert_eq!(t.degree(n), want, "node {}", n.index());
        }
    }

    #[test]
    fn ba_connected_within_degree_bounds(
        n in 10usize..300,
        m in 1usize..5,
        seed in 0u64..1000,
    ) {
        let t = barabasi_albert(n, m, seed);
        prop_assert_eq!(t.node_count(), n);
        prop_assert!(t.is_connected());
        assert_bidirectional(&t);
        for node in t.nodes() {
            let d = t.degree(node);
            prop_assert!(d >= m, "BA min degree is m: node {} has {}", node.index(), d);
            prop_assert!(d < n, "degree bounded by n");
        }
        // Edge count is exact: C(m+1, 2) seed edges + m per later node.
        let expect = m * (m + 1) / 2 + (n - m - 1) * m;
        prop_assert_eq!(t.link_count(), 2 * expect);
    }

    #[test]
    fn two_tier_connected_and_dual_homed(
        backbone in 3usize..40,
        access_per in 0usize..8,
        seed in 0u64..1000,
    ) {
        let t = two_tier_isp(backbone, access_per, seed);
        prop_assert_eq!(t.node_count(), backbone * (1 + access_per));
        prop_assert!(t.is_connected());
        assert_bidirectional(&t);
        for node in t.nodes() {
            let d = t.degree(node);
            if node.index() < backbone {
                // Ring gives 2; chords + access homing only add.
                prop_assert!(d >= 2, "backbone node {} degree {}", node.index(), d);
            } else {
                prop_assert_eq!(d, 2, "access routers are dual-homed");
            }
        }
    }

    #[test]
    fn same_seed_byte_identical_topology(n in 10usize..150, m in 1usize..4, seed in any::<u64>()) {
        let a = barabasi_albert(n, m, seed);
        let b = barabasi_albert(n, m, seed);
        prop_assert_eq!(bytes(&a), bytes(&b));
        let a2 = two_tier_isp(3 + n % 20, m, seed);
        let b2 = two_tier_isp(3 + n % 20, m, seed);
        prop_assert_eq!(bytes(&a2), bytes(&b2));
    }

    #[test]
    fn same_seed_byte_identical_traffic(n in 10usize..100, seed in any::<u64>()) {
        let t = barabasi_albert(n, 2, seed);
        let nodes: Vec<NodeId> = t.nodes().collect();
        let g1 = gravity_flows(&nodes, 4, 1e6, seed);
        let g2 = gravity_flows(&nodes, 4, 1e6, seed);
        prop_assert_eq!(
            serde_json::to_string(&g1).unwrap(),
            serde_json::to_string(&g2).unwrap()
        );
        let e1 = elephant_mice_flows(&nodes, 50, 1e6, 0.9, seed);
        let e2 = elephant_mice_flows(&nodes, 50, 1e6, 0.9, seed);
        prop_assert_eq!(
            serde_json::to_string(&e1).unwrap(),
            serde_json::to_string(&e2).unwrap()
        );
    }

    #[test]
    fn traffic_generators_produce_valid_flows(n in 5usize..80, seed in any::<u64>()) {
        let t = barabasi_albert(n, 2, seed);
        let nodes: Vec<NodeId> = t.nodes().collect();
        let flows = gravity_flows(&nodes, 3, 2e6, seed);
        let total: f64 = flows.iter().map(|f| f.rate).sum();
        prop_assert!((total - 2e6).abs() / 2e6 < 1e-9, "gravity rescales exactly, got {total}");
        for f in &flows {
            prop_assert!(f.src != f.dst);
            prop_assert!(f.rate.is_finite() && f.rate > 0.0);
            prop_assert!(f.src.index() < n && f.dst.index() < n);
        }
        // The schedule never reschedules a flow for a different destination.
        let hot = flows[0].dst;
        for (at, idx, rate) in flash_crowd_schedule(&flows, hot, 5.0, 9.0, 3.0) {
            prop_assert!((5.0..=9.0).contains(&at));
            prop_assert_eq!(flows[idx].dst, hot);
            prop_assert!(rate.is_finite() && rate >= 0.0);
        }
    }
}
