//! Workspace-level integration test support (see `tests/*.rs`).
pub fn placeholder() {}
