//! Workspace-level integration test support (see `tests/*.rs`).

// No unsafe anywhere: the whole workspace is plain safe Rust, and
// `mdr-lint` verifies every crate root carries this attribute.
#![forbid(unsafe_code)]

pub fn placeholder() {}
