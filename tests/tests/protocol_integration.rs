//! Cross-crate protocol integration: MPDA driven over the real wire
//! codec, on the paper's topologies, validated against centrally
//! computed ground truth.

use mdr::prelude::*;
use mdr_routing::{dijkstra, Harness, TopoTable};

/// Deterministic pseudo-random cost in [1, 10].
fn cost(a: NodeId, b: NodeId) -> f64 {
    1.0 + ((a.0.wrapping_mul(97) ^ b.0.wrapping_mul(31)) % 90) as f64 / 10.0
}

#[test]
fn mpda_converges_on_cairn_with_heterogeneous_costs() {
    let t = topo::cairn();
    let mut h = Harness::mpda(&t, cost, 42);
    assert!(h.run_to_quiescence(5_000_000));
    h.assert_converged();
    h.assert_loop_free();
}

#[test]
fn successor_sets_match_theorem4_on_net1() {
    let t = topo::net1();
    let mut h = Harness::mpda(&t, cost, 17);
    assert!(h.run_to_quiescence(5_000_000));
    // Theorem 4: S^i_j = {k | D^k_j < D^i_j} at convergence.
    for i in t.nodes() {
        for j in t.nodes() {
            if i == j {
                continue;
            }
            let expect: Vec<NodeId> = h.routers[i.index()]
                .neighbors()
                .into_iter()
                .filter(|&k| h.routers[k.index()].distance(j) < h.routers[i.index()].distance(j))
                .collect();
            assert_eq!(
                h.routers[i.index()].successors(j),
                expect.as_slice(),
                "router {i} dest {j}"
            );
        }
    }
}

#[test]
fn lsu_messages_roundtrip_through_codec() {
    // Intercept messages from a converging network and push every one
    // through encode/decode, verifying the wire format carries the whole
    // protocol.
    let t = topo::net1();
    let n = t.node_count();
    let mut routers: Vec<MpdaRouter> =
        (0..n).map(|i| MpdaRouter::new(NodeId(i as u32), n)).collect();
    let mut wire: Vec<(NodeId, NodeId, Vec<u8>)> = Vec::new();
    let mut total = 0usize;
    for l in t.links() {
        let out = routers[l.from.index()]
            .handle(RouterEvent::LinkUp { to: l.to, cost: cost(l.from, l.to) });
        for s in out.sends {
            wire.push((l.from, s.to, mdr::proto::encode(&s.msg).to_vec()));
        }
    }
    while let Some((from, to, bytes)) = wire.pop() {
        total += 1;
        assert!(total < 1_000_000, "no quiescence");
        let msg = mdr::proto::decode(&bytes).expect("valid wire message");
        let out = routers[to.index()].handle(RouterEvent::Lsu { from, msg });
        for s in out.sends {
            wire.push((to, s.to, mdr::proto::encode(&s.msg).to_vec()));
        }
    }
    // Ground truth from a central Dijkstra over the same costs.
    let table: TopoTable = t.links().iter().map(|l| (l.from, l.to, cost(l.from, l.to))).collect();
    for i in t.nodes() {
        let truth = dijkstra(n, &table, i);
        for j in t.nodes() {
            let got = routers[i.index()].distance(j);
            assert!(
                (got - truth.dist[j.index()]).abs() < 1e-9,
                "router {i} dest {j}: {got} vs {}",
                truth.dist[j.index()]
            );
        }
    }
}

#[test]
fn flow_allocation_follows_successor_sets() {
    // Wire mdr-routing and mdr-flow together by hand: allocator
    // fractions must cover exactly the MPDA successor set.
    let t = topo::net1();
    let mut h = Harness::mpda(&t, cost, 3);
    assert!(h.run_to_quiescence(5_000_000));
    let n = t.node_count();
    for i in t.nodes() {
        let r = &h.routers[i.index()];
        let mut alloc = Allocator::new(n, Mode::Multipath);
        for j in t.nodes() {
            if j == i {
                continue;
            }
            let sc: Vec<SuccessorCost> = r
                .successors(j)
                .iter()
                .map(|&k| {
                    SuccessorCost::new(k, r.neighbor_distance(k, j) + r.link_cost(k).unwrap())
                })
                .collect();
            alloc.update(j, &sc, Update::LongTerm);
            let params = alloc.params(j);
            assert!(params.validate().is_ok());
            assert_eq!(params.successors(), r.successors(j), "router {i} dest {j}");
        }
    }
}

#[test]
fn harness_partition_and_heal() {
    // Partition NET1 by cutting the waist, verify unreachability, heal,
    // verify full convergence — spanning net, routing, and lfi crates.
    let t = topo::net1();
    let mut h = Harness::mpda(&t, |_, _| 1.0, 9);
    assert!(h.run_to_quiescence(5_000_000));
    // Old NET1 waist: the only west-east links are 4-5, 2-5.
    h.fail_link(NodeId(4), NodeId(5));
    h.fail_link(NodeId(2), NodeId(5));
    assert!(h.run_to_quiescence(5_000_000));
    h.assert_loop_free();
    let d = h.routers[0].distance(NodeId(9));
    assert!(d > 1e15, "0 must not reach 9 across the cut, got {d}");
    h.restore_link(NodeId(4), NodeId(5), 1.0);
    h.restore_link(NodeId(2), NodeId(5), 1.0);
    assert!(h.run_to_quiescence(5_000_000));
    h.assert_converged();
    h.assert_loop_free();
}
