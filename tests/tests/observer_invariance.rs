//! Telemetry must be a pure observer: attaching any observer — null,
//! recording, or metrics — to any scenario must leave every measured
//! field of the [`SimReport`] bit-identical to the observer-off run.
//! This is asserted, not assumed, across steady-state, scenario-driven,
//! and chaos-driven runs.

use mdr::prelude::*;

/// Drop the telemetry field so observer-on and observer-off reports can
/// be compared wholesale.
fn strip(mut r: SimReport) -> SimReport {
    r.telemetry = None;
    r
}

/// The scenario grid: each entry is a fully configured job with the
/// observer off.
fn scenario_grid() -> Vec<(&'static str, SimJob)> {
    let mut out = Vec::new();

    // Two routers, one flow — the minimal data path.
    let mut b = TopologyBuilder::new();
    let a = b.add_node("a");
    let z = b.add_node("z");
    let t = b.bidi(a, z, 1e7, 0.001).build().unwrap();
    let traffic = TrafficMatrix::from_flows(&t, &[Flow::new(a, z, 2_000_000.0)]).unwrap();
    let cfg = SimConfig { warmup: 2.0, duration: 4.0, seed: 5, ..Default::default() };
    out.push(("two_node", SimJob::new(&t, &traffic, cfg)));

    // CAIRN multipath with a mid-run traffic burst.
    let t = topo::cairn();
    let flows = topo::cairn_flows(&t, 1_500_000.0);
    let traffic = TrafficMatrix::from_flows(&t, &flows).unwrap();
    let scen = Scenario::new()
        .at(5.0, ScenarioEvent::SetFlowRate { flow: 2, rate: 3_000_000.0 })
        .at(8.0, ScenarioEvent::SetFlowRate { flow: 2, rate: 1_500_000.0 });
    let cfg = SimConfig { warmup: 4.0, duration: 8.0, seed: 7, ..Default::default() };
    out.push(("cairn_burst", SimJob::new(&t, &traffic, cfg).with_scenario(&scen)));

    // A triangle losing and regaining its direct edge.
    let mut b = TopologyBuilder::new();
    let x = b.add_node("x");
    let y = b.add_node("y");
    let z = b.add_node("z");
    let t = b.bidi(x, y, 1e7, 0.001).bidi(y, z, 1e7, 0.001).bidi(x, z, 1e7, 0.001).build().unwrap();
    let traffic = TrafficMatrix::from_flows(&t, &[Flow::new(x, z, 3_000_000.0)]).unwrap();
    let scen = Scenario::new()
        .at(4.0, ScenarioEvent::FailLink { a: x, b: z })
        .at(7.0, ScenarioEvent::RestoreLink { a: x, b: z });
    let cfg = SimConfig { warmup: 2.0, duration: 8.0, seed: 13, ..Default::default() };
    out.push(("triangle_failure", SimJob::new(&t, &traffic, cfg).with_scenario(&scen)));

    // NET1 under the full chaos stack with invariant auditing on.
    let t = topo::net1();
    let flows = topo::net1_flows(800_000.0);
    let traffic = TrafficMatrix::from_flows(&t, &flows).unwrap();
    let plan = FaultPlan {
        seed: 0xBEEF,
        start: 2.0,
        link_faults: Some(FaultProcess { mtbf: 10.0, mttr: 1.0 }),
        router_faults: Some(FaultProcess { mtbf: 25.0, mttr: 1.5 }),
        control: Some(ControlChaos::default()),
        profile: None,
    };
    let cfg = SimConfig {
        warmup: 4.0,
        duration: 8.0,
        seed: 11,
        fault_plan: Some(plan),
        audit_invariants: true,
        ..Default::default()
    };
    out.push(("net1_chaos", SimJob::new(&t, &traffic, cfg)));

    out
}

/// Every observer flavor attached to every scenario: telemetry present
/// and non-trivial, everything else bit-identical to observer-off.
#[test]
fn every_observer_leaves_every_scenario_bit_identical() {
    for (name, job) in scenario_grid() {
        let off = job.run();
        assert!(off.telemetry.is_none(), "{name}: observer-off run must carry no telemetry");
        let modes = [
            ObserverMode::Null,
            ObserverMode::Recording { data_plane: true },
            ObserverMode::Recording { data_plane: false },
            ObserverMode::Metrics { bucket: 0.5 },
        ];
        for mode in modes {
            let mut on = job.clone();
            on.cfg.observer = mode.clone();
            let rep = on.run();
            let tel = rep.telemetry.clone().unwrap_or_else(|| {
                panic!("{name}/{mode:?}: observer attached but no telemetry reported")
            });
            assert!(tel.events > 0, "{name}/{mode:?}: observer saw no events");
            assert_eq!(
                strip(rep),
                off,
                "{name}/{mode:?}: attaching the observer changed the simulation"
            );
        }
    }
}

/// The recording observer with the data plane on must see strictly more
/// events than the control-plane-only one, and the extra events must
/// all be data-plane kinds.
#[test]
fn data_plane_filter_only_removes_data_plane_events() {
    let (_, job) = scenario_grid().swap_remove(1);
    let run = |data_plane: bool| {
        let mut j = job.clone();
        j.cfg.observer = ObserverMode::Recording { data_plane };
        j.run().telemetry.unwrap().recorded.unwrap()
    };
    let full = run(true);
    let control = run(false);
    assert!(full.len() > control.len(), "data plane must contribute events");
    assert!(
        control.iter().all(|ev| !ev.is_data_plane()),
        "filtered trace leaked data-plane events"
    );
    let filtered: Vec<_> = full.iter().filter(|ev| !ev.is_data_plane()).cloned().collect();
    assert_eq!(filtered, control, "filter must be exactly the data-plane predicate");
}

/// The metrics observer on the chaos scenario measures convergence for
/// the injected faults and the delay histogram accounts for every
/// delivered packet.
#[test]
fn metrics_hub_measures_chaos_convergence() {
    let (_, job) = scenario_grid().pop().unwrap();
    let mut on = job;
    on.cfg.observer = ObserverMode::Metrics { bucket: 1.0 };
    let rep = on.run();
    let rob = rep.robustness.clone().expect("chaos run carries robustness");
    assert!(!rob.faults.is_empty(), "fault plan injected nothing");
    let metrics = rep.telemetry.unwrap().metrics.expect("metrics observer reports metrics");
    assert!(!metrics.convergence.is_empty(), "no convergence samples measured");
    for c in &metrics.convergence {
        assert!(c.recovery_s >= 0.0, "negative recovery: {c:?}");
    }
    // Every delivery is histogrammed; warm-up deliveries are observed
    // too, so the histogram can only hold more than the measured count.
    assert!(
        metrics.delays.total() >= rep.delivered && rep.delivered > 0,
        "delay histogram lost deliveries: {} < {}",
        metrics.delays.total(),
        rep.delivered
    );
}
