//! Miniature versions of the paper's evaluation claims, fast enough for
//! every test run. The full figures live in `crates/bench`; these
//! guard the *direction* of each result so a regression anywhere in the
//! stack (routing, allocation, estimation, simulation) trips a test.

use mdr::prelude::*;

fn cfg(seed: u64) -> RunConfig {
    RunConfig { warmup: 15.0, duration: 25.0, seed, mean_packet_bits: 1000.0, ..Default::default() }
}

/// Fig. 10 direction: MP within a modest envelope of OPT on NET1.
#[test]
fn net1_mp_close_to_opt() {
    let t = topo::net1();
    let flows = topo::net1_flows(2_200_000.0);
    let opt = mdr::run(&t, &flows, Scheme::opt(), cfg(7)).unwrap();
    let mp = mdr::run(&t, &flows, Scheme::mp(10.0, 2.0), cfg(7)).unwrap();
    let ratio = mp.mean_delay_ms / opt.mean_delay_ms;
    assert!(
        (0.95..1.25).contains(&ratio),
        "MP/OPT = {ratio} (MP {} ms, OPT {} ms)",
        mp.mean_delay_ms,
        opt.mean_delay_ms
    );
}

/// Fig. 12 direction: SP substantially worse than MP on loaded NET1.
#[test]
fn net1_sp_much_worse_than_mp() {
    let t = topo::net1();
    let flows = topo::net1_flows(2_500_000.0);
    let mp = mdr::run(&t, &flows, Scheme::mp(10.0, 2.0), cfg(7)).unwrap();
    let sp = mdr::run(&t, &flows, Scheme::sp(10.0), cfg(7)).unwrap();
    assert!(
        sp.mean_delay_ms > 1.8 * mp.mean_delay_ms,
        "SP {} ms vs MP {} ms",
        sp.mean_delay_ms,
        mp.mean_delay_ms
    );
}

/// Fig. 9 direction: MP tracks OPT on CAIRN.
#[test]
fn cairn_mp_close_to_opt() {
    let t = topo::cairn();
    let flows = topo::cairn_flows(&t, 3_500_000.0);
    let opt = mdr::run(&t, &flows, Scheme::opt(), cfg(7)).unwrap();
    let mp = mdr::run(&t, &flows, Scheme::mp(10.0, 2.0), cfg(7)).unwrap();
    let ratio = mp.mean_delay_ms / opt.mean_delay_ms;
    assert!((0.9..1.3).contains(&ratio), "MP/OPT = {ratio}");
}

/// §5.2 direction: MP with T_s = T_l still close to OPT (the cheapest
/// possible MP deployment beats SP).
#[test]
fn mp_with_coarse_ts_still_good() {
    let t = topo::net1();
    let flows = topo::net1_flows(2_400_000.0);
    let mp_coarse = mdr::run(&t, &flows, Scheme::mp(10.0, 10.0), cfg(7)).unwrap();
    let sp = mdr::run(&t, &flows, Scheme::sp(10.0), cfg(7)).unwrap();
    assert!(
        mp_coarse.mean_delay_ms < sp.mean_delay_ms,
        "MP-TL-10-TS-10 {} ms vs SP {} ms",
        mp_coarse.mean_delay_ms,
        sp.mean_delay_ms
    );
}

/// The OPT solver is a valid lower bound: no scheme's *analytic*
/// evaluation beats it on the same instance.
#[test]
fn opt_is_lower_bound_analytically() {
    let t = topo::net1();
    let flows = topo::net1_flows(2_000_000.0);
    let traffic = TrafficMatrix::from_flows(&t, &flows).unwrap();
    let models: Vec<Mm1> =
        t.links().iter().map(|l| Mm1::new(l.capacity, l.prop_delay, 1000.0)).collect();
    let opt = mdr::opt::solve(&t, &models, &traffic, GallagerConfig::default()).unwrap();
    // Run MP, extract its converged routing variables, evaluate them on
    // the same analytic model: must not undercut OPT.
    let sim_cfg = SimConfig { warmup: 15.0, duration: 20.0, seed: 7, ..Default::default() };
    let mut sim = Simulator::new(&t, &traffic, &Scenario::new(), sim_cfg);
    let _ = sim.run();
    let mp_eval = evaluate(&t, &models, &traffic, &sim.routing_vars()).unwrap();
    assert!(
        opt.eval.total_delay <= mp_eval.total_delay * 1.0001,
        "OPT D_T {} vs MP D_T {}",
        opt.eval.total_delay,
        mp_eval.total_delay
    );
}

/// OPT's objective is monotone in offered load (regression guard for
/// the solver's step-size robustness).
#[test]
fn opt_monotone_in_load() {
    let t = topo::net1();
    let models: Vec<Mm1> =
        t.links().iter().map(|l| Mm1::new(l.capacity, l.prop_delay, 1000.0)).collect();
    let mut prev = 0.0;
    for &rate in &[1_000_000.0, 1_500_000.0, 2_000_000.0, 2_500_000.0, 3_000_000.0] {
        let flows = topo::net1_flows(rate);
        let traffic = TrafficMatrix::from_flows(&t, &flows).unwrap();
        let r = mdr::opt::solve(
            &t,
            &models,
            &traffic,
            GallagerConfig { eta: rate * rate * 2e-7, ..Default::default() },
        )
        .unwrap();
        assert!(
            r.eval.total_delay > prev,
            "D_T not monotone at {rate}: {} after {prev}",
            r.eval.total_delay
        );
        prev = r.eval.total_delay;
    }
}
