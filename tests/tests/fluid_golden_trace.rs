//! Golden-trace snapshot for the fluid engine on a *generated*
//! topology: a fixed-seed Barabási–Albert 200-router network carrying
//! gravity-model traffic, run in [`SimMode::Fluid`] with the recording
//! observer on. Pins three things at once against a checked-in
//! snapshot: the generator's byte-stability (a changed BA graph or
//! gravity matrix shifts every event), the fluid control-plane event
//! sequence, and the telemetry emission points in fluid mode.
//! Regenerate deliberately with
//! `UPDATE_SNAPSHOTS=1 cargo test -p mdr-tests --test fluid_golden_trace`.

use mdr::prelude::*;
use mdr_net::gen;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

/// How many events to pin verbatim at each end of the sequence.
const EDGE: usize = 20;

/// The fixed scenario: BA(n=200, m=2, seed=9) with gravity traffic
/// among the first 50 routers (all 200 still run the routing protocol;
/// control-plane work scales with *active destinations*, and a sparse
/// matrix keeps the debug-profile run CI-cheap), one mid-run rate bump
/// on flow 7. The horizon is short (3 s simulated) — long enough for
/// the boot flood, several short/long update rounds, and the
/// perturbation response.
fn golden_events() -> Vec<SimEvent> {
    let t = gen::barabasi_albert(200, 2, 9);
    let endpoints: Vec<NodeId> = t.nodes().take(50).collect();
    let flows = gen::gravity_flows(&endpoints, 1, 2.0e7, 9);
    let traffic = TrafficMatrix::from_flows(&t, &flows).expect("generated flows are valid");
    let bump = traffic.flows()[7].rate * 3.0;
    let scen = Scenario::new().at(1.5, ScenarioEvent::SetFlowRate { flow: 7, rate: bump });
    let cfg = SimConfig {
        warmup: 1.0,
        duration: 2.0,
        seed: 42,
        sim_mode: SimMode::Fluid,
        observer: ObserverMode::Recording { data_plane: false },
        ..Default::default()
    };
    let rep = SimJob::new(&t, &traffic, cfg).with_scenario(&scen).run();
    rep.telemetry.expect("recording observer attached").recorded.expect("recorded sequence")
}

/// Render the sequence as the snapshot text: total, per-kind counts,
/// and the first/last [`EDGE`] events in `Debug` form (stable float
/// formatting, so byte-exact across runs and platforms).
fn render(events: &[SimEvent]) -> String {
    let mut kinds: BTreeMap<&'static str, u64> = BTreeMap::new();
    for ev in events {
        *kinds.entry(ev.kind()).or_default() += 1;
    }
    let mut out = String::new();
    let _ = writeln!(out, "events: {}", events.len());
    let _ = writeln!(out, "kinds:");
    for (k, n) in &kinds {
        let _ = writeln!(out, "  {k}: {n}");
    }
    let _ = writeln!(out, "first {EDGE}:");
    for ev in events.iter().take(EDGE) {
        let _ = writeln!(out, "  {ev:?}");
    }
    let _ = writeln!(out, "last {EDGE}:");
    for ev in events.iter().rev().take(EDGE).rev() {
        let _ = writeln!(out, "  {ev:?}");
    }
    out
}

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots/fluid_golden_trace.snap")
}

#[test]
fn ba200_fluid_event_sequence_matches_golden_snapshot() {
    let events = golden_events();
    assert!(!events.is_empty(), "the run must emit control-plane events");
    let got = render(&events);
    let path = snapshot_path();
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
UPDATE_SNAPSHOTS=1 cargo test -p mdr-tests --test fluid_golden_trace",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "fluid golden trace diverged — if the change is intentional, regenerate with \
UPDATE_SNAPSHOTS=1 cargo test -p mdr-tests --test fluid_golden_trace"
    );
}

#[test]
fn fluid_recorded_sequence_is_reproducible() {
    let a = golden_events();
    let b = golden_events();
    assert_eq!(a.len(), b.len(), "event counts differ across identical runs");
    assert_eq!(a, b, "event sequences differ across identical runs");
}
