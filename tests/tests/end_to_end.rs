//! End-to-end integration: the full stack (topology → MPDA → IH/AH →
//! packet simulator → measurements) reproduces the paper's headline
//! inequalities on a scale small enough for the default test profile.

use mdr::prelude::*;

/// A diamond where one flow exceeds any single path: the canonical
/// multipath win.
fn diamond() -> (Topology, Vec<Flow>) {
    let mut b = TopologyBuilder::new();
    let a = b.add_node("a");
    let x = b.add_node("x");
    let y = b.add_node("y");
    let z = b.add_node("z");
    let t = b
        .bidi(a, x, 1_000_000.0, 0.001)
        .bidi(a, y, 1_000_000.0, 0.001)
        .bidi(x, z, 1_000_000.0, 0.001)
        .bidi(y, z, 1_000_000.0, 0.001)
        .build()
        .unwrap();
    let flows = vec![Flow::new(a, z, 1_200_000.0)];
    (t, flows)
}

fn quick() -> RunConfig {
    RunConfig {
        warmup: 10.0,
        duration: 20.0,
        seed: 3,
        mean_packet_bits: 1000.0,
        ..Default::default()
    }
}

/// The saturating diamond needs a longer warm-up: AH takes several
/// `T_s` periods to balance, and the backlog built before that
/// persists. 40 s absorbs even unlucky tick phasings where the split
/// oscillates for a while before settling (seed 3 is one such).
fn diamond_cfg() -> RunConfig {
    RunConfig {
        warmup: 40.0,
        duration: 30.0,
        seed: 3,
        mean_packet_bits: 1000.0,
        ..Default::default()
    }
}

#[test]
fn multipath_beats_single_path_when_one_path_saturates() {
    let (t, flows) = diamond();
    let mp = mdr::run(&t, &flows, Scheme::mp(10.0, 1.0), diamond_cfg()).unwrap();
    let sp = mdr::run(&t, &flows, Scheme::sp(10.0), diamond_cfg()).unwrap();
    assert!(
        sp.mean_delay_ms > 3.0 * mp.mean_delay_ms,
        "SP {} ms vs MP {} ms",
        sp.mean_delay_ms,
        mp.mean_delay_ms
    );
}

#[test]
fn mp_tracks_opt_on_diamond() {
    let (t, flows) = diamond();
    let opt = mdr::run(&t, &flows, Scheme::opt(), diamond_cfg()).unwrap();
    let mp = mdr::run(&t, &flows, Scheme::mp(10.0, 1.0), diamond_cfg()).unwrap();
    assert!(
        mp.mean_delay_ms < 10.0 * opt.mean_delay_ms,
        "MP {} ms vs OPT {} ms",
        mp.mean_delay_ms,
        opt.mean_delay_ms
    );
    // OPT splits evenly on the symmetric diamond.
    let eval = opt.analytic.unwrap();
    assert!(eval.max_utilization < 0.7);
}

#[test]
fn loop_freedom_no_ttl_drops_across_schemes_and_failures() {
    let t = topo::net1();
    let flows = topo::net1_flows(1_500_000.0);
    let scen = Scenario::new()
        .at(6.0, ScenarioEvent::FailLink { a: NodeId(4), b: NodeId(5) })
        .at(12.0, ScenarioEvent::RestoreLink { a: NodeId(4), b: NodeId(5) });
    for scheme in [Scheme::mp(5.0, 1.0), Scheme::sp(5.0)] {
        let cfg = RunConfig {
            warmup: 8.0,
            duration: 10.0,
            seed: 5,
            mean_packet_bits: 1000.0,
            ..Default::default()
        };
        let r = mdr::run_with_scenario(&t, &flows, scheme, cfg, &scen).unwrap();
        let rep = r.report.unwrap();
        let ttl: u64 = rep.flows.iter().map(|f| f.dropped_ttl).sum();
        assert_eq!(ttl, 0, "{}: packets looped", r.label);
        assert!(rep.delivered > 10_000);
    }
}

#[test]
fn deterministic_end_to_end() {
    let t = topo::net1();
    let flows = topo::net1_flows(800_000.0);
    let a = mdr::run(&t, &flows, Scheme::mp(10.0, 2.0), quick()).unwrap();
    let b = mdr::run(&t, &flows, Scheme::mp(10.0, 2.0), quick()).unwrap();
    assert_eq!(a.per_flow_delay_ms, b.per_flow_delay_ms);
    assert_eq!(a.report.unwrap().control_messages, b.report.unwrap().control_messages);
}

#[test]
fn light_load_all_schemes_equivalent() {
    // "When connectivity is low or network load is light, MP routing
    // cannot offer any advantage over SP" — at 100 kb/s per flow all
    // three schemes ride the shortest paths.
    let t = topo::net1();
    let flows = topo::net1_flows(100_000.0);
    let opt = mdr::run(&t, &flows, Scheme::opt(), quick()).unwrap();
    let mp = mdr::run(&t, &flows, Scheme::mp(10.0, 2.0), quick()).unwrap();
    let sp = mdr::run(&t, &flows, Scheme::sp(10.0), quick()).unwrap();
    for (a, b) in [(mp.mean_delay_ms, opt.mean_delay_ms), (sp.mean_delay_ms, mp.mean_delay_ms)] {
        let ratio = a / b;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }
}

#[test]
fn dynamic_rate_change_applies() {
    let t = topo::net1();
    let flows = topo::net1_flows(500_000.0);
    // Kill all traffic mid-run; deliveries must stop growing.
    let mut scen = Scenario::new();
    for i in 0..flows.len() {
        scen = scen.at(15.0, ScenarioEvent::SetFlowRate { flow: i, rate: 0.0 });
    }
    let cfg = RunConfig {
        warmup: 5.0,
        duration: 20.0,
        seed: 2,
        mean_packet_bits: 1000.0,
        ..Default::default()
    };
    let r = mdr::run_with_scenario(&t, &flows, Scheme::mp(10.0, 2.0), cfg, &scen).unwrap();
    let rep = r.report.unwrap();
    // ~10 s of traffic at 5 Mb/s total = ~50k packets, not ~100k.
    assert!(rep.delivered < 70_000, "delivered {}", rep.delivered);
    assert!(rep.delivered > 30_000);
}

#[test]
fn analytic_and_measured_delays_agree_for_fixed_routing() {
    // The simulator's physics match the M/M/1 analytic model when the
    // routing is pinned (Kleinrock independence holds well at this
    // scale) — the cross-validation that justifies comparing measured
    // MP/SP against OPT.
    let t = topo::net1();
    let flows = topo::net1_flows(1_200_000.0);
    let r = mdr::run(&t, &flows, Scheme::opt(), quick()).unwrap();
    let analytic = r.analytic.unwrap();
    for (m, a) in r.per_flow_delay_ms.iter().zip(&analytic.flow_delays) {
        let a_ms = a * 1000.0;
        assert!((m - a_ms).abs() / a_ms < 0.2, "measured {m} ms vs analytic {a_ms} ms");
    }
}
