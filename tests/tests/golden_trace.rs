//! Golden-trace snapshot: the exact control-plane event sequence a
//! fixed-seed CAIRN run emits, pinned against a checked-in snapshot.
//! Any change to event ordering, variant payloads, or emission points
//! shows up as a diff here — regenerate deliberately with
//! `UPDATE_SNAPSHOTS=1 cargo test -p mdr-tests --test golden_trace`.

use mdr::prelude::*;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

/// How many events to pin verbatim at each end of the sequence.
const EDGE: usize = 20;

/// The fixed scenario: CAIRN at a moderate load with one mid-run rate
/// change, control-plane events only (the data plane contributes
/// millions of hops; counts pin it well enough via `delivered`).
fn golden_events() -> Vec<SimEvent> {
    let t = topo::cairn();
    let flows = topo::cairn_flows(&t, 2_000_000.0);
    let traffic = TrafficMatrix::from_flows(&t, &flows).expect("traffic");
    let scen = Scenario::new().at(3.0, ScenarioEvent::SetFlowRate { flow: 4, rate: 4_000_000.0 });
    let cfg = SimConfig {
        warmup: 2.0,
        duration: 4.0,
        seed: 42,
        observer: ObserverMode::Recording { data_plane: false },
        ..Default::default()
    };
    let rep = SimJob::new(&t, &traffic, cfg).with_scenario(&scen).run();
    rep.telemetry.expect("recording observer attached").recorded.expect("recorded sequence")
}

/// Render the sequence as the snapshot text: total, per-kind counts,
/// and the first/last [`EDGE`] events in `Debug` form (stable float
/// formatting, so byte-exact across runs and platforms).
fn render(events: &[SimEvent]) -> String {
    let mut kinds: BTreeMap<&'static str, u64> = BTreeMap::new();
    for ev in events {
        *kinds.entry(ev.kind()).or_default() += 1;
    }
    let mut out = String::new();
    let _ = writeln!(out, "events: {}", events.len());
    let _ = writeln!(out, "kinds:");
    for (k, n) in &kinds {
        let _ = writeln!(out, "  {k}: {n}");
    }
    let _ = writeln!(out, "first {EDGE}:");
    for ev in events.iter().take(EDGE) {
        let _ = writeln!(out, "  {ev:?}");
    }
    let _ = writeln!(out, "last {EDGE}:");
    for ev in events.iter().rev().take(EDGE).rev() {
        let _ = writeln!(out, "  {ev:?}");
    }
    out
}

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots/golden_trace.snap")
}

#[test]
fn cairn_event_sequence_matches_golden_snapshot() {
    let events = golden_events();
    assert!(!events.is_empty(), "the run must emit control-plane events");
    let got = render(&events);
    let path = snapshot_path();
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
UPDATE_SNAPSHOTS=1 cargo test -p mdr-tests --test golden_trace",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "golden trace diverged — if the change is intentional, regenerate with \
UPDATE_SNAPSHOTS=1 cargo test -p mdr-tests --test golden_trace"
    );
}

#[test]
fn recorded_sequence_is_reproducible() {
    let a = golden_events();
    let b = golden_events();
    assert_eq!(a.len(), b.len(), "event counts differ across identical runs");
    assert_eq!(a, b, "event sequences differ across identical runs");
}

#[test]
fn recorded_times_are_nondecreasing_and_in_horizon() {
    let events = golden_events();
    let mut prev = 0.0;
    for ev in &events {
        let t = ev.time();
        assert!(t >= prev, "event time went backwards: {prev} -> {t} ({ev:?})");
        assert!(t <= 2.0 + 4.0 + 1e-9, "event past the horizon: {ev:?}");
        prev = t;
    }
}
