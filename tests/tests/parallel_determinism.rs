//! The parallel batch harness must be a pure speed-up: running a batch
//! through `run_many` / `run_jobs` on worker threads has to produce
//! reports bit-identical to running each job serially, and repeating
//! the same seed has to reproduce the same report field for field.

use mdr::prelude::*;

/// CAIRN at a moderate load with a mid-run perturbation — exercises
/// data, control, estimator, and scenario paths.
fn jobs() -> Vec<RunJob> {
    let t = topo::cairn();
    let flows = topo::cairn_flows(&t, 1_500_000.0);
    let scen = Scenario::new()
        .at(6.0, ScenarioEvent::SetFlowRate { flow: 2, rate: 3_000_000.0 })
        .at(9.0, ScenarioEvent::SetFlowRate { flow: 2, rate: 1_500_000.0 });
    let mut out = Vec::new();
    for seed in [1u64, 7, 42] {
        let cfg = RunConfig {
            warmup: 5.0,
            duration: 10.0,
            seed,
            mean_packet_bits: 1000.0,
            ..Default::default()
        };
        out.push(RunJob::new(&t, &flows, Scheme::mp(10.0, 2.0), cfg));
        out.push(RunJob::new(&t, &flows, Scheme::sp(10.0), cfg).with_scenario(&scen));
    }
    out
}

/// Field-by-field comparison of two reports, with named assertions so a
/// divergence points at the subsystem that broke determinism.
fn assert_reports_identical(a: &SimReport, b: &SimReport) {
    assert_eq!(a.delivered, b.delivered, "delivered counts differ");
    assert_eq!(a.dropped, b.dropped, "drop counts differ");
    assert_eq!(a.events_processed, b.events_processed, "event counts differ");
    assert_eq!(a.control_messages, b.control_messages, "control message counts differ");
    assert_eq!(a.control_bytes, b.control_bytes, "control byte counts differ");
    assert_eq!(a.mean_delays_ms, b.mean_delays_ms, "per-flow mean delays differ (bitwise)");
    assert_eq!(a.flows, b.flows, "per-flow statistics differ");
    assert_eq!(a.links, b.links, "per-link statistics differ");
    assert_eq!(a.series, b.series, "delay time series differ");
    assert_eq!(a.robustness, b.robustness, "robustness reports differ");
    assert_eq!(a.telemetry, b.telemetry, "telemetry reports differ");
    // Belt and braces: the derived equality must agree too.
    assert_eq!(a, b);
}

#[test]
fn run_jobs_matches_serial_execution_bit_for_bit() {
    let batch = jobs();
    let serial: Vec<RunResult> = batch.iter().map(|j| j.run().expect("serial run")).collect();
    // Explicit worker count — more workers than jobs stresses the
    // scheduling edge cases and ignores RAYON_NUM_THREADS races.
    let parallel: Vec<RunResult> =
        run_jobs_with(8, batch).into_iter().map(|r| r.expect("parallel run")).collect();
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.label, p.label, "job order not preserved");
        assert_eq!(s.per_flow_delay_ms, p.per_flow_delay_ms);
        assert!(s.mean_delay_ms == p.mean_delay_ms, "mean delay differs (bitwise)");
        match (&s.report, &p.report) {
            (Some(a), Some(b)) => assert_reports_identical(a, b),
            (None, None) => {}
            _ => panic!("report presence differs"),
        }
    }
}

#[test]
fn run_many_matches_serial_execution_bit_for_bit() {
    let t = topo::net1();
    let flows = topo::net1_flows(1_200_000.0);
    let traffic = TrafficMatrix::from_flows(&t, &flows).expect("traffic");
    let batch: Vec<SimJob> = [3u64, 11, 29]
        .iter()
        .map(|&seed| {
            let cfg = SimConfig { warmup: 5.0, duration: 8.0, seed, ..Default::default() };
            SimJob::new(&t, &traffic, cfg)
        })
        .collect();
    let serial: Vec<SimReport> = batch.iter().map(|j| j.run()).collect();
    let parallel = run_many_with(4, batch);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_reports_identical(s, p);
    }
}

#[test]
fn observer_on_runs_match_serial_execution_bit_for_bit() {
    let t = topo::net1();
    let flows = topo::net1_flows(1_200_000.0);
    let traffic = TrafficMatrix::from_flows(&t, &flows).expect("traffic");
    let batch: Vec<SimJob> = [3u64, 11, 29]
        .iter()
        .map(|&seed| {
            let cfg = SimConfig {
                warmup: 5.0,
                duration: 8.0,
                seed,
                observer: ObserverMode::Recording { data_plane: true },
                ..Default::default()
            };
            SimJob::new(&t, &traffic, cfg)
        })
        .collect();
    let serial: Vec<SimReport> = batch.iter().map(|j| j.run()).collect();
    let parallel = run_many_with(4, batch);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        // Telemetry equality here covers the full recorded event
        // sequence — the worker-thread runs must emit the exact same
        // events in the exact same order as the serial ones.
        assert_reports_identical(s, p);
        let tel = s.telemetry.as_ref().expect("recording observer must report telemetry");
        assert!(tel.events > 0, "observer saw no events");
        assert_eq!(
            tel.recorded.as_ref().map(|evs| evs.len() as u64),
            Some(tel.events),
            "recorded length must match the event count"
        );
    }
}

/// NET1 under the full chaos stack: link failures, router crashes, and
/// a lossy control channel, with invariant auditing on.
fn chaos_jobs() -> Vec<SimJob> {
    let t = topo::net1();
    let flows = topo::net1_flows(800_000.0);
    let traffic = TrafficMatrix::from_flows(&t, &flows).expect("traffic");
    [3u64, 11, 29]
        .iter()
        .map(|&seed| {
            let plan = FaultPlan {
                seed: seed ^ 0xC0FFEE,
                start: 2.0,
                link_faults: Some(FaultProcess { mtbf: 10.0, mttr: 1.0 }),
                router_faults: Some(FaultProcess { mtbf: 25.0, mttr: 1.5 }),
                control: Some(ControlChaos::default()),
                profile: None,
            };
            let cfg = SimConfig {
                warmup: 4.0,
                duration: 8.0,
                seed,
                fault_plan: Some(plan),
                audit_invariants: true,
                ..Default::default()
            };
            SimJob::new(&t, &traffic, cfg)
        })
        .collect()
}

#[test]
fn chaos_runs_match_serial_execution_bit_for_bit() {
    let batch = chaos_jobs();
    let serial: Vec<SimReport> = batch.iter().map(|j| j.run()).collect();
    let parallel = run_many_with(4, batch);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_reports_identical(s, p);
        let rob = s.robustness.as_ref().expect("chaos job must produce a robustness report");
        assert_eq!(rob.invariant_violations, 0, "{:?}", rob.first_violation);
        assert!(!rob.faults.is_empty(), "the fault plan must have injected something");
    }
}

/// NET1 under the structured [`NetProfile`] adversary: bursty loss
/// forward, i.i.d. reverse (asymmetric), grey-failing data path, and a
/// scripted partition/heal — on top of the link-fault process.
fn profile_jobs() -> Vec<SimJob> {
    let t = topo::net1();
    let flows = topo::net1_flows(800_000.0);
    let traffic = TrafficMatrix::from_flows(&t, &flows).expect("traffic");
    [5u64, 23]
        .iter()
        .map(|&seed| {
            let mut profile =
                NetProfile::parse("ge:0.06,0.4,0.01,0.6;rev-iid:0.03;grey:0.25,0.1", seed ^ 0xAD)
                    .expect("profile spec");
            profile.partitions.push(PartitionSpec {
                at: 6.0,
                heal_at: 9.0,
                side: vec![NodeId(0), NodeId(1)],
            });
            let plan = FaultPlan {
                seed: seed ^ 0xC0FFEE,
                start: 2.0,
                link_faults: Some(FaultProcess { mtbf: 12.0, mttr: 1.0 }),
                router_faults: None,
                control: None,
                profile: Some(profile),
            };
            let cfg = SimConfig {
                warmup: 4.0,
                duration: 8.0,
                seed,
                fault_plan: Some(plan),
                audit_invariants: true,
                ..Default::default()
            };
            SimJob::new(&t, &traffic, cfg)
        })
        .collect()
}

#[test]
fn profile_chaos_runs_match_serial_execution_bit_for_bit() {
    let batch = profile_jobs();
    let serial: Vec<SimReport> = batch.iter().map(|j| j.run()).collect();
    let parallel = run_many_with(4, batch);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_reports_identical(s, p);
        let rob = s.robustness.as_ref().expect("profile job must produce a robustness report");
        assert_eq!(rob.invariant_violations, 0, "{:?}", rob.first_violation);
        assert!(
            rob.faults.iter().any(|f| matches!(f.event, FaultEvent::PartitionCut { .. })),
            "the scripted cut must be recorded"
        );
        assert!(
            rob.faults.iter().any(|f| matches!(f.event, FaultEvent::PartitionHeal { .. })),
            "the scripted heal must be recorded"
        );
        assert!(rob.counters.lsus_grey_dropped > 0, "the grey failure never bit");
    }
}

#[test]
fn profile_chaos_same_seed_reproduces_the_same_report() {
    let job = profile_jobs().remove(0);
    let a = job.run();
    let b = job.run();
    assert_reports_identical(&a, &b);
    assert_eq!(a.robustness, b.robustness);
}

#[test]
fn chaos_same_seed_reproduces_the_same_robustness_report() {
    let job = chaos_jobs().remove(0);
    let a = job.run();
    let b = job.run();
    assert_reports_identical(&a, &b);
    // The RobustnessReport specifically must be field-for-field equal —
    // fault times, recovery times, and every damage counter.
    assert_eq!(a.robustness, b.robustness);
}

/// Fluid-mode batches must satisfy the same contract as packet-mode
/// ones: `run_many` is a pure speed-up, and a repeated seed reproduces
/// the report bit for bit. The fluid engine is deterministic by
/// construction (no RNG in the data plane), so any divergence here
/// means worker-thread state leaked into the solver.
#[test]
fn fluid_runs_match_serial_execution_bit_for_bit() {
    let t = topo::net1();
    let flows = topo::net1_flows(2_000_000.0);
    let traffic = TrafficMatrix::from_flows(&t, &flows).expect("traffic");
    let batch: Vec<SimJob> = [(Mode::Multipath, 3u64), (Mode::SinglePath, 11)]
        .iter()
        .map(|&(mode, seed)| {
            let cfg = SimConfig {
                mode,
                warmup: 5.0,
                duration: 8.0,
                seed,
                sim_mode: SimMode::Fluid,
                ..Default::default()
            };
            SimJob::new(&t, &traffic, cfg)
        })
        .collect();
    let serial: Vec<SimReport> = batch.iter().map(|j| j.run()).collect();
    let parallel = run_many_with(4, batch.clone());
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_reports_identical(s, p);
    }
    // Same job, fresh run: bit-for-bit reproduction.
    let again: Vec<SimReport> = batch.iter().map(|j| j.run()).collect();
    for (s, p) in serial.iter().zip(&again) {
        assert_reports_identical(s, p);
    }
}

#[test]
fn same_seed_reproduces_the_same_report() {
    let t = topo::cairn();
    let flows = topo::cairn_flows(&t, 2_000_000.0);
    let cfg = RunConfig {
        warmup: 5.0,
        duration: 10.0,
        seed: 13,
        mean_packet_bits: 1000.0,
        ..Default::default()
    };
    let a = mdr::run(&t, &flows, Scheme::mp(10.0, 2.0), cfg).expect("first run");
    let b = mdr::run(&t, &flows, Scheme::mp(10.0, 2.0), cfg).expect("second run");
    assert_eq!(a.per_flow_delay_ms, b.per_flow_delay_ms);
    assert_reports_identical(
        a.report.as_ref().expect("report"),
        b.report.as_ref().expect("report"),
    );
}
