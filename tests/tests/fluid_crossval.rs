//! Packet-vs-fluid cross-validation (the correctness anchor for the
//! fluid flow-level engine in `mdr_sim::fluid`).
//!
//! For every CAIRN/NET1 figure scenario (the stationary grids behind
//! Figs. 9-12) and both simulated schemes (MP = MPDA multipath, SP =
//! single path), the fluid engine must agree with the packet engine on:
//!
//! * **mean end-to-end delay**, network-wide and per flow, within the
//!   per-scenario tolerance pinned in [`CASES`]. The packet engine
//!   samples a finite Poisson stream, so a few percent of M/M/1
//!   sampling noise is unavoidable; the pinned bounds sit ~2x above the
//!   observed disagreement, tight enough that a systematic modeling
//!   error (wrong marginal form, mis-propagated link flow, missing
//!   queueing term) blows through them.
//! * **quiescent successor sets**: after both runs end quiescent, every
//!   router's MPDA successor set toward every active destination must
//!   be identical *up to boundary ties*. A neighbor `k` is a boundary
//!   tie when both engines place its reported distance within
//!   `tie_margin` of the router's own distance `D_i` — membership of
//!   `{k : D_k < D_i}` then flips on measurement noise smaller than the
//!   5% LSU quantization threshold, and no routing decision of
//!   consequence depends on it. Any disagreement *away* from the
//!   boundary fails the test: that is a converged-routing divergence,
//!   not noise. `tie_margin: 0.0` pins strict set equality (the
//!   quiet-load SP anchor achieves it).
//!
//! Two operating regimes are pinned deliberately:
//!
//! * The **figure loads** (CAIRN 4 Mb/s, NET1 2.5 Mb/s). MP agrees to
//!   ~2% there. SP does *not*: at those loads SP oscillates (already
//!   documented at fig13 — route flaps build real queue backlogs that
//!   take seconds to drain), and the fluid model is an *equilibrium*
//!   model with no backlog memory, so it reports the oscillation's
//!   M/M/1 component only. Those cases stay in the suite with loose,
//!   pinned envelopes — both engines must still agree that SP is far
//!   worse than MP — and the gap itself is the documented fidelity
//!   limit of flow-level simulation (EXPERIMENTS.md "Scale").
//! * A **quiet SP load** per topology (CAIRN 2 Mb/s, NET1 1.5 Mb/s)
//!   where single-path routing is stable: there fluid must match SP as
//!   tightly as it matches MP, which pins that the SP disagreement
//!   above is the regime, not the engine.
//!
//! On a delay failure the message prints the worst-offending link (the
//! largest |packet - fluid| utilization gap) to localize which queue
//! diverged.

use mdr::prelude::*;

/// One cross-validation case: a figure scenario plus pinned tolerances.
struct Case {
    /// Scenario name (matches the `crates/bench` figure it anchors).
    name: &'static str,
    net: Net,
    /// Per-flow offered rate (bits/s) — the figure's operating point.
    rate: f64,
    mode: Mode,
    /// `T_s` (SP pins 2.0, like the scheme layer).
    t_short: f64,
    /// Max relative error of the network-wide mean delay.
    tol_mean: f64,
    /// Max relative error of any single flow's mean delay.
    tol_flow: f64,
    /// Successor-set tie margin (0.0 = strict set equality).
    tie_margin: f64,
}

#[derive(Clone, Copy, PartialEq)]
enum Net {
    Cairn,
    Net1,
}

/// The pinned grid. Observed disagreement (seed 7, warmup 20 s,
/// duration 40 s) is noted per case; tolerances sit roughly 2x above.
const CASES: &[Case] = &[
    // Figs. 9/11 operating point. Observed: mean 3.8%, flow 13.3%,
    // worst boundary gap 0.21.
    Case {
        name: "fig9_cairn_mp_tl10_ts2",
        net: Net::Cairn,
        rate: 4.0e6,
        mode: Mode::Multipath,
        t_short: 2.0,
        tol_mean: 0.08,
        tol_flow: 0.25,
        tie_margin: 0.35,
    },
    // Observed: mean 0.7%, flow 3.9%, worst boundary gap 0.143.
    Case {
        name: "fig11_cairn_mp_tl10_ts10",
        net: Net::Cairn,
        rate: 4.0e6,
        mode: Mode::Multipath,
        t_short: 10.0,
        tol_mean: 0.08,
        tol_flow: 0.15,
        tie_margin: 0.25,
    },
    // SP at the figure load = the oscillatory regime (see module docs).
    // Observed: mean 0.22, worst flow 4.4, worst boundary gap 0.50.
    Case {
        name: "fig11_cairn_sp_tl10",
        net: Net::Cairn,
        rate: 4.0e6,
        mode: Mode::SinglePath,
        t_short: 2.0,
        tol_mean: 0.75,
        tol_flow: 6.0,
        tie_margin: 0.75,
    },
    // Quiet-load SP anchor: stable single-path routing. Observed: mean
    // 2.0%, flow 3.8%, ZERO successor-set differences — pinned strict.
    Case {
        name: "quiet_cairn_sp_tl10",
        net: Net::Cairn,
        rate: 2.0e6,
        mode: Mode::SinglePath,
        t_short: 2.0,
        tol_mean: 0.08,
        tol_flow: 0.12,
        tie_margin: 0.0,
    },
    // Figs. 10/12 operating point. Observed: mean 1.0%, flow 4.6%,
    // worst boundary gap 0.043.
    Case {
        name: "fig10_net1_mp_tl10_ts2",
        net: Net::Net1,
        rate: 2.5e6,
        mode: Mode::Multipath,
        t_short: 2.0,
        tol_mean: 0.08,
        tol_flow: 0.15,
        tie_margin: 0.12,
    },
    // Observed: mean 3.1%, flow 10.9%, worst boundary gap 0.152.
    Case {
        name: "fig12_net1_mp_tl10_ts10",
        net: Net::Net1,
        rate: 2.5e6,
        mode: Mode::Multipath,
        t_short: 10.0,
        tol_mean: 0.08,
        tol_flow: 0.20,
        tie_margin: 0.25,
    },
    // SP at the figure load, oscillatory. Observed: mean 1.01, worst
    // flow 1.24, worst boundary gap 0.31.
    Case {
        name: "fig12_net1_sp_tl10",
        net: Net::Net1,
        rate: 2.5e6,
        mode: Mode::SinglePath,
        t_short: 2.0,
        tol_mean: 1.40,
        tol_flow: 3.00,
        tie_margin: 0.50,
    },
    // Quiet-load SP anchor. Observed: mean 1.7%, flow 2.6%, worst
    // boundary gap 0.082 (NET1's waist keeps a few genuine near-ties).
    Case {
        name: "quiet_net1_sp_tl10",
        net: Net::Net1,
        rate: 1.5e6,
        mode: Mode::SinglePath,
        t_short: 2.0,
        tol_mean: 0.08,
        tol_flow: 0.12,
        tie_margin: 0.15,
    },
];

fn setup(net: Net, rate: f64) -> (Topology, TrafficMatrix) {
    let (t, flows) = match net {
        Net::Cairn => {
            let t = topo::cairn();
            let flows = topo::cairn_flows(&t, rate);
            (t, flows)
        }
        Net::Net1 => (topo::net1(), topo::net1_flows(rate)),
    };
    let traffic = TrafficMatrix::from_flows(&t, &flows).expect("figure flows are valid");
    (t, traffic)
}

fn cfg(case: &Case, sim_mode: SimMode) -> SimConfig {
    SimConfig {
        mode: case.mode,
        t_long: 10.0,
        t_short: case.t_short,
        warmup: 20.0,
        duration: 40.0,
        seed: 7,
        sim_mode,
        ..Default::default()
    }
}

/// Worst-offending link: the directed link with the largest
/// |packet − fluid| utilization gap, rendered for failure messages.
fn worst_link(t: &Topology, packet: &SimReport, fluid: &SimReport) -> String {
    let dur = packet.duration;
    let mut worst = (0usize, 0.0f64, 0.0f64, 0.0f64);
    for (l, (p, f)) in packet.links.iter().zip(&fluid.links).enumerate() {
        let cap = t.links()[l].capacity;
        let up = p.bits / dur / cap;
        let uf = f.bits / dur / cap;
        let gap = (up - uf).abs();
        if gap > worst.1 {
            worst = (l, gap, up, uf);
        }
    }
    let (l, _, up, uf) = worst;
    let link = &t.links()[l];
    format!(
        "worst link {} -> {}: packet util {:.4}, fluid util {:.4}",
        t.name(link.from),
        t.name(link.to),
        up,
        uf
    )
}

fn check_case(case: &Case) {
    let (t, traffic) = setup(case.net, case.rate);
    let dests: Vec<NodeId> = traffic.active_destinations();
    let scen = Scenario::new();

    let mut psim = Simulator::new(&t, &traffic, &scen, cfg(case, SimMode::Packet));
    let packet = psim.run();
    let mut fsim = FluidSimulator::new(&t, &traffic, &scen, cfg(case, SimMode::Fluid));
    let fluid = fsim.run();

    // Both control planes must end quiescent — successor sets are only
    // comparable at quiescence.
    assert!(fsim.is_quiescent(), "{}: fluid control plane not quiescent at end", case.name);

    // 1. Network-wide mean delay.
    let (pm, fm) = (packet.mean_delay_ms(), fluid.mean_delay_ms());
    let rel = (pm - fm).abs() / pm;
    assert!(
        rel <= case.tol_mean,
        "{}: network mean delay diverged: packet {:.3} ms vs fluid {:.3} ms \
         (rel {:.3} > tol {}); {}",
        case.name,
        pm,
        fm,
        rel,
        case.tol_mean,
        worst_link(&t, &packet, &fluid)
    );

    // 2. Per-flow mean delays.
    for (fi, (pd, fd)) in packet.mean_delays_ms.iter().zip(&fluid.mean_delays_ms).enumerate() {
        let rel = (pd - fd).abs() / pd;
        assert!(
            rel <= case.tol_flow,
            "{}: flow {} delay diverged: packet {:.3} ms vs fluid {:.3} ms \
             (rel {:.3} > tol {}); {}",
            case.name,
            fi,
            pd,
            fd,
            rel,
            case.tol_flow,
            worst_link(&t, &packet, &fluid)
        );
    }

    // 3. Quiescent successor sets, identical up to boundary ties.
    for i in t.nodes() {
        for &j in &dests {
            if j == i {
                continue;
            }
            let ps = psim.router(i).successors(j);
            let fs = fsim.router(i).successors(j);
            if ps == fs {
                continue;
            }
            assert!(
                case.tie_margin > 0.0,
                "{}: successor sets must be strictly identical at {} -> {:?}: \
                 packet {:?} vs fluid {:?}",
                case.name,
                t.name(i),
                j,
                ps,
                fs
            );
            // Every asymmetric member must be a boundary tie in BOTH
            // engines' converged tables.
            for &k in ps.iter().chain(fs) {
                if ps.contains(&k) == fs.contains(&k) {
                    continue;
                }
                for (engine, r) in [("packet", psim.router(i)), ("fluid", fsim.router(i))] {
                    let di = r.distance(j);
                    let dk = r.neighbor_distance(k, j);
                    let gap = (dk - di).abs() / di.max(1e-30);
                    assert!(
                        gap <= case.tie_margin,
                        "{}: successor divergence beyond the tie margin at {} -> {:?} \
                         via {:?}: {} engine has D_i {:.6e}, D_k {:.6e} (gap {:.3} > {}); \
                         packet set {:?}, fluid set {:?}",
                        case.name,
                        t.name(i),
                        j,
                        k,
                        engine,
                        di,
                        dk,
                        gap,
                        case.tie_margin,
                        ps,
                        fs
                    );
                }
            }
        }
    }

    let worst_flow = packet
        .mean_delays_ms
        .iter()
        .zip(&fluid.mean_delays_ms)
        .map(|(pd, fd)| (pd - fd).abs() / pd)
        .fold(0.0f64, f64::max);
    println!(
        "{}: packet {:.3} ms vs fluid {:.3} ms (rel {:.4}, worst flow {:.4}); \
         successor sets agree",
        case.name, pm, fm, rel, worst_flow
    );
}

#[test]
fn fig9_cairn_mp_tl10_ts2() {
    check_case(&CASES[0]);
}

#[test]
fn fig11_cairn_mp_tl10_ts10() {
    check_case(&CASES[1]);
}

#[test]
fn fig11_cairn_sp_tl10() {
    check_case(&CASES[2]);
}

#[test]
fn quiet_cairn_sp_tl10() {
    check_case(&CASES[3]);
}

#[test]
fn fig10_net1_mp_tl10_ts2() {
    check_case(&CASES[4]);
}

#[test]
fn fig12_net1_mp_tl10_ts10() {
    check_case(&CASES[5]);
}

#[test]
fn fig12_net1_sp_tl10() {
    check_case(&CASES[6]);
}

#[test]
fn quiet_net1_sp_tl10() {
    check_case(&CASES[7]);
}
